"""Ablation benches for the design choices DESIGN.md calls out.

* preference ablation — synonym recall of the walk vs co-occurrence and
  the overlap between contextual and individual restart variants;
* smoothing sweep — Precision@10 across Eq 5-6 λ values;
* pruning sweep — closeness beam width vs agreement with the exact
  extractor.
"""

import pytest

from repro.experiments import ablations, format_table


def test_ablation_preference(benchmark, context):
    report = benchmark.pedantic(
        lambda: ablations.run_preference_ablation(
            context, top_n=20, max_targets=40
        ),
        rounds=1,
        iterations=1,
    )

    print("\n" + "=" * 60)
    print("Preference ablation")
    print(format_table(
        ["measure", "value"],
        [
            ["contextual/individual overlap", report.variant_overlap],
            ["walk synonym recall", report.walk_synonym_recall],
            ["co-occurrence synonym recall",
             report.cooccurrence_synonym_recall],
        ],
    ))

    # the walk finds synonym cluster-mates; co-occurrence structurally
    # cannot (they never share a title)
    assert report.walk_synonym_recall >= 0.8
    assert report.cooccurrence_synonym_recall == 0.0
    # at this corpus scale the two restart variants mostly agree — an
    # honest negative result recorded in EXPERIMENTS.md
    assert 0.5 <= report.variant_overlap <= 1.0


def test_ablation_smoothing(benchmark, context):
    report = benchmark.pedantic(
        lambda: ablations.run_smoothing_sweep(
            context, lambdas=(0.5, 0.7, 0.8, 0.9, 1.0), n_queries=10, k=10
        ),
        rounds=1,
        iterations=1,
    )

    print("\nSmoothing sweep (Precision@10 by λ)")
    print(format_table(
        ["lambda", "P@10"],
        sorted(report.precision_by_lambda.items()),
    ))

    values = list(report.precision_by_lambda.values())
    assert all(0.0 <= v <= 1.0 for v in values)
    # the paper's pipeline is robust to λ: precision must not collapse at
    # any setting
    assert min(values) >= max(values) - 0.35


def test_ablation_pruning(benchmark, context):
    report = benchmark.pedantic(
        lambda: ablations.run_pruning_sweep(
            context, beams=(50, 200, 1000, 4000), n_targets=15
        ),
        rounds=1,
        iterations=1,
    )

    print("\nPruning sweep (close-term overlap vs exact)")
    print(format_table(
        ["beam width", "overlap"], sorted(report.overlap_by_beam.items()),
    ))

    overlaps = report.overlap_by_beam
    # wider beams converge to the exact extraction
    assert overlaps[4000] >= overlaps[50]
    assert overlaps[4000] >= 0.95
