#!/usr/bin/env python
"""Faceted exploration + feedback adaptation (future-work extensions).

Simulates an interactive session over a bibliographic corpus:

1. the user issues a query;
2. the system shows per-keyword *facets* — substitution axes with result
   coverage (the paper's "ad hoc faceted retrieval" direction);
3. the user accepts one suggestion; the feedback adaptor boosts the
   involved term relations;
4. the next identical query ranks the accepted suggestion higher.

Run:  python examples/faceted_session.py
"""

from repro import (
    InvertedIndex,
    KeywordSearchEngine,
    Reformulator,
    ReformulatorConfig,
    SynthConfig,
    TupleGraph,
    synthesize_dblp,
)
from repro.extensions import FacetedSuggester, FeedbackAdaptor


def main() -> None:
    corpus = synthesize_dblp(
        SynthConfig(n_authors=150, n_papers=600, n_conferences=16, seed=23)
    )
    database = corpus.database
    index = InvertedIndex(database).build()
    search = KeywordSearchEngine(TupleGraph(database), index)

    reformulator = Reformulator.from_database(
        database, ReformulatorConfig(n_candidates=10)
    )

    query = ["probabilistic", "query"]
    print(f"user query: {' '.join(query)!r}\n")

    # --- facets ---------------------------------------------------------
    suggester = FacetedSuggester(reformulator, search=search)
    for facet in suggester.facets(query, k=4):
        print(
            f"facet for position {facet.position} "
            f"({facet.original!r}, field {facet.field_label}):"
        )
        for entry in facet.entries:
            print(
                f"  -> {entry.substituted:<14} "
                f"({entry.result_count} results)  {entry.query_text}"
            )
        print()

    # --- feedback loop ---------------------------------------------------
    adaptor = FeedbackAdaptor(
        reformulator.graph,
        similarity=reformulator.similarity,
        closeness=reformulator.closeness,
        learning_rate=1.5,
    )
    adaptive = Reformulator(
        reformulator.graph,
        ReformulatorConfig(n_candidates=10),
        similarity=adaptor,
        closeness=adaptor,
    )

    before = adaptive.reformulate(query, k=8)
    print("suggestions before feedback:")
    for i, s in enumerate(before, 1):
        print(f"  [{i}] {s.text}")

    clicked = before[min(4, len(before) - 1)]
    print(f"\nuser accepts: {clicked.text!r}")
    for _ in range(3):
        adaptor.record(query, clicked, accepted=True)

    after = adaptive.reformulate(query, k=8)
    print("\nsuggestions after feedback:")
    for i, s in enumerate(after, 1):
        marker = "  <-- accepted earlier" if s.text == clicked.text else ""
        print(f"  [{i}] {s.text}{marker}")

    rank_before = [s.text for s in before].index(clicked.text) + 1
    texts_after = [s.text for s in after]
    rank_after = (
        texts_after.index(clicked.text) + 1
        if clicked.text in texts_after
        else None
    )
    print(f"\naccepted suggestion rank: {rank_before} -> {rank_after}")


if __name__ == "__main__":
    main()
