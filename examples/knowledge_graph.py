#!/usr/bin/env python
"""Reformulation over schemaless data: an RDF-style knowledge graph.

The paper notes its approach "is also applicable to ... schemaless
structured data, e.g., XML, RDF and graph data".  This example builds a
small movie knowledge graph from raw triples, compiles it to the
relational substrate, and reformulates queries over entity labels and
literal vocabulary.

Run:  python examples/knowledge_graph.py
"""

import random

from repro import Reformulator, ReformulatorConfig
from repro.storage.triples import Literal, TripleStore

DIRECTORS = {
    "nolan": ["inception", "interstellar", "memento", "tenet"],
    "villeneuve": ["arrival", "dune", "sicario"],
    "scott": ["alien", "gladiator", "the martian"],
    "cameron": ["avatar", "titanic", "the abyss"],
}

GENRES = {
    "inception": "scifi", "interstellar": "scifi", "memento": "thriller",
    "tenet": "scifi", "arrival": "scifi", "dune": "scifi",
    "sicario": "thriller", "alien": "scifi", "gladiator": "drama",
    "the martian": "scifi", "avatar": "scifi", "titanic": "drama",
    "the abyss": "scifi",
}

#: Tagline vocabularies per genre: quasi-synonym pairs like
#: ("spaceship", "starship") never share a tagline but share genres.
TAGLINE_WORDS = {
    "scifi": [
        ("space", "cosmos"), ("spaceship", "starship"), ("alien",),
        ("future",), ("planet",), ("gravity",), ("wormhole",), ("robot",),
    ],
    "thriller": [
        ("memory", "recall"), ("conspiracy",), ("cartel",), ("identity",),
        ("tension",), ("betrayal",),
    ],
    "drama": [
        ("love", "romance"), ("arena",), ("ocean",), ("sacrifice",),
        ("legacy",), ("honor",),
    ],
}


def build_store(seed: int = 4) -> TripleStore:
    rng = random.Random(seed)
    store = TripleStore()
    for director, movies in DIRECTORS.items():
        for movie in movies:
            genre = GENRES[movie]
            store.add(movie, "directed_by", director)
            store.add(movie, "genre", genre)
            clusters = rng.sample(
                TAGLINE_WORDS[genre], min(4, len(TAGLINE_WORDS[genre]))
            )
            tagline = " ".join(rng.choice(c) for c in clusters)
            store.add(movie, "tagline", Literal(tagline))
            store.add(movie, "year", Literal(str(rng.randint(1986, 2023))))
    return store


def main() -> None:
    store = build_store()
    database = store.to_database()
    print(database.describe())

    reformulator = Reformulator.from_database(
        database, ReformulatorConfig(n_candidates=8)
    )
    print(f"\nTAT graph: {reformulator.graph}\n")

    for query in (["space", "wormhole"], ["nolan", "future"]):
        print(f"query: {' '.join(query)!r}")
        for suggestion in reformulator.reformulate(query, k=5):
            print(f"  {suggestion.score:.3e}  {suggestion.text}")
        print()

    # pick a synonym-cluster word that actually got sampled into a tagline
    present = {
        t.text for t in reformulator.graph.index.terms()
        if t.field == ("facts", "literal")
    }
    pair = next(
        c for c in TAGLINE_WORDS["scifi"]
        if len(c) > 1 and all(w in present for w in c)
    )
    target, synonym = pair[0], pair[1]
    print(
        f"similar terms of {target!r} (synonym {synonym!r} never shares "
        "a tagline):"
    )
    for term, score in reformulator.similarity.similar_terms(target, 8):
        marker = "  <-- synonym" if term == synonym else ""
        print(f"  {score:.4f}  {term}{marker}")

    print(
        "\nsimilar entities of 'nolan' (all entity labels share one class "
        "in the reified triple schema — his movies lead, then peers):"
    )
    for term, score in reformulator.similarity.similar_terms("nolan", 8):
        print(f"  {score:.5f}  {term}")


if __name__ == "__main__":
    main()
