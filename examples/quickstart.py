#!/usr/bin/env python
"""Quickstart: reformulate a keyword query over a bibliographic corpus.

Generates a small synthetic DBLP-style database, builds the offline stage
(TAT graph + term relations) and asks for substitutive queries — the
end-to-end pipeline of the paper in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import Reformulator, SynthConfig, synthesize_dblp


def main() -> None:
    # 1. A structured corpus: conferences / authors / papers / writes.
    corpus = synthesize_dblp(
        SynthConfig(n_authors=150, n_papers=600, n_conferences=16, seed=42)
    )
    print(corpus.database.describe())

    # 2. Offline stage: index -> TAT graph -> term relations.
    reformulator = Reformulator.from_database(corpus.database)
    print(f"\nTAT graph: {reformulator.graph}\n")

    # 3. Online stage: top-k substitutive queries for an input query.
    query = ["probabilistic", "query"]
    print(f"input query: {' '.join(query)!r}")
    print("reformulated suggestions:")
    for suggestion in reformulator.reformulate(query, k=8):
        print(f"  {suggestion.score:.3e}  {suggestion.text}")

    # 4. Any single keyword also has an offline similar-term list.
    print("\nsimilar terms of 'probabilistic' (contextual random walk):")
    for term, score in reformulator.similarity.similar_terms(
        "probabilistic", 8
    ):
        print(f"  {score:.4f}  {term}")


if __name__ == "__main__":
    main()
