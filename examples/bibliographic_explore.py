#!/usr/bin/env python
"""The Figure 6 demo: keyword search results next to reformulations.

Reproduces the paper's demo interface as a terminal report: the main
column shows ranked keyword-search results (joined tuple trees rendered
with their titles/venues/authors), and the side panel shows the ranked
reformulated queries — the suggestions a user could click to explore the
corpus beyond the returned papers.

Run:  python examples/bibliographic_explore.py [keyword ...]
"""

import sys

from repro import (
    InvertedIndex,
    KeywordSearchEngine,
    Reformulator,
    ResultRanker,
    SynthConfig,
    TupleGraph,
    synthesize_dblp,
)


def main() -> None:
    corpus = synthesize_dblp(
        SynthConfig(n_authors=200, n_papers=800, n_conferences=20, seed=11)
    )
    database = corpus.database
    index = InvertedIndex(database).build()
    tuple_graph = TupleGraph(database)
    search = KeywordSearchEngine(tuple_graph, index, max_results=50)
    ranker = ResultRanker(index)
    reformulator = Reformulator.from_database(database)

    if len(sys.argv) > 1:
        query = [arg.lower() for arg in sys.argv[1:]]
    else:
        # Default showcase query in the spirit of the paper's
        # "spatio temporal Christian S. Jensen".
        query = ["spatial", "trajectory"]

    print("=" * 64)
    print(f"query: {' '.join(query)}")
    print("=" * 64)

    results = ranker.rank(search.search(query))
    print(f"\n-- search results ({results.size} found, top 3 shown) --")
    for i, result in enumerate(results.top(3), 1):
        print(f"\n[{i}] joined tree of {result.size} tuple(s):")
        print(result.render(database))

    print("\n-- reformulated queries (side panel) --")
    suggestions = reformulator.reformulate(query, k=8)
    for i, suggestion in enumerate(suggestions, 1):
        coverage = search.result_size(list(suggestion.keywords))
        print(
            f"[{i}] {suggestion.text}   "
            f"(score {suggestion.score:.2e}, {coverage} results)"
        )

    if suggestions:
        best = suggestions[0]
        print(f"\n-- exploring the top suggestion: {best.text!r} --")
        explored = ranker.rank(search.search(list(best.keywords)))
        for i, result in enumerate(explored.top(2), 1):
            print(f"\n[{i}] joined tree of {result.size} tuple(s):")
            print(result.render(database))


if __name__ == "__main__":
    main()
