#!/usr/bin/env python
"""Figure 3/4 walkthrough: the TAT graph and the contextual walk, visually.

Rebuilds the paper's explanatory pictures on a tiny hand-made corpus:

* Figure 3 — the term-augmented tuple graph around a term;
* Figure 4 — what the basic random walk sees vs what the contextual walk
  adds: "probabilistic" and "uncertain" never share a title, yet the walk
  connects them through shared venue/author context.

Prints a text rendering and emits Graphviz DOT you can paste into any
renderer.

Run:  python examples/figure4_walkthrough.py
"""

from repro import (
    CooccurrenceSimilarity,
    InvertedIndex,
    SimilarityExtractor,
    TATGraph,
)
from repro.graph.viz import ego_network, render_text, to_dot

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from conftest import build_toy_database  # noqa: E402  (reuse the toy corpus)


def main() -> None:
    database = build_toy_database()
    print(database.describe())

    graph = TATGraph(database, InvertedIndex(database))
    target = graph.resolve_text_one("probabilistic")

    print("\n== Figure 3: the TAT neighborhood of 'probabilistic' ==")
    ego = ego_network(graph, target, radius=2, max_nodes=25)
    print(render_text(graph, ego))

    print("\n== Figure 4: basic walk vs contextual walk ==")
    basic = SimilarityExtractor(graph, contextual=False)
    contextual = SimilarityExtractor(graph)
    cooccurrence = CooccurrenceSimilarity(graph)

    print("frequent co-occurrence (cannot see 'uncertain' at all):")
    for term, score in cooccurrence.similar_terms("probabilistic", 6):
        print(f"  {score:.4f}  {term}")

    print("contextual random walk (venue/author context reaches it):")
    for term, score in contextual.similar_terms("probabilistic", 8):
        marker = "  <-- never co-occurs!" if term in (
            "uncertain", "data", "management",
        ) else ""
        print(f"  {score:.4f}  {term}{marker}")

    uncertain = graph.resolve_text_one("uncertain")
    print(
        f"\nsim(probabilistic -> uncertain): "
        f"contextual={contextual.similarity(target, uncertain):.5f}, "
        f"basic={basic.similarity(target, uncertain):.5f}, "
        f"co-occurrence={cooccurrence.similarity(target, uncertain):.5f}"
    )

    print("\n== Graphviz DOT of the neighborhood ==")
    print(to_dot(graph, ego))


if __name__ == "__main__":
    main()
