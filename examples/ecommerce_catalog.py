#!/usr/bin/env python
"""Query reformulation over a custom schema: an e-commerce catalog.

The paper's pipeline is schema-agnostic — anything with tables, foreign
keys and text fields gets a TAT graph.  This example builds a product
catalog (brands, categories, products, reviews) from scratch, wires the
same offline/online stages, and reformulates shopper queries like
"wireless headphones" into related catalog vocabulary.

Run:  python examples/ecommerce_catalog.py
"""

import random

from repro import (
    Column,
    Database,
    DatabaseSchema,
    ForeignKey,
    Reformulator,
    TableSchema,
)

#: Product lines with quasi-synonym clusters, mirroring how shoppers and
#: merchants describe the same thing differently ("wireless"/"bluetooth").
PRODUCT_LINES = {
    "audio": {
        "clusters": [
            ("wireless", "bluetooth", "cordless"),
            ("headphones", "earbuds", "headset"),
            ("noise", "cancelling"), ("bass",), ("stereo",),
            ("microphone",), ("portable",), ("speaker",),
        ],
        "brands": ["sonora", "wavecore", "decibel"],
    },
    "kitchen": {
        "clusters": [
            ("blender", "mixer", "processor"),
            ("stainless", "steel"), ("nonstick",), ("ceramic",),
            ("espresso", "coffee"), ("grinder",), ("kettle",), ("toaster",),
        ],
        "brands": ["cucina", "homechef", "brewmate"],
    },
    "outdoor": {
        "clusters": [
            ("tent", "shelter"),
            ("waterproof", "rainproof"), ("hiking", "trekking"),
            ("sleeping", "bag"), ("lantern",), ("compass",),
            ("backpack", "rucksack"), ("thermal",),
        ],
        "brands": ["trailhead", "summitgear", "campina"],
    },
}

REVIEW_WORDS = [
    "great", "quality", "sturdy", "battery", "value", "comfortable",
    "lightweight", "durable", "recommend", "excellent",
]


def catalog_schema() -> DatabaseSchema:
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "brands",
        [Column("bid", "int", nullable=False), Column("name", "text")],
        primary_key="bid", atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "categories",
        [Column("gid", "int", nullable=False), Column("name", "text")],
        primary_key="gid", atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "products",
        [
            Column("pid", "int", nullable=False),
            Column("title", "text"),
            Column("bid", "int"),
            Column("gid", "int"),
            Column("price", "float"),
        ],
        primary_key="pid", text_fields=["title"],
    ))
    schema.add_table(TableSchema(
        "reviews",
        [
            Column("rid", "int", nullable=False),
            Column("pid", "int"),
            Column("body", "text"),
            Column("stars", "int"),
        ],
        primary_key="rid", text_fields=["body"],
    ))
    schema.add_foreign_key(ForeignKey("products", "bid", "brands", "bid"))
    schema.add_foreign_key(ForeignKey("products", "gid", "categories", "gid"))
    schema.add_foreign_key(ForeignKey("reviews", "pid", "products", "pid"))
    return schema


def build_catalog(n_products: int = 500, seed: int = 5) -> Database:
    rng = random.Random(seed)
    database = Database(catalog_schema())

    lines = list(PRODUCT_LINES)
    brand_ids = {}
    bid = 0
    for line in lines:
        for brand in PRODUCT_LINES[line]["brands"]:
            database.insert("brands", {"bid": bid, "name": brand})
            brand_ids.setdefault(line, []).append(bid)
            bid += 1
    for gid, line in enumerate(lines):
        database.insert("categories", {"gid": gid, "name": line})

    rid = 0
    for pid in range(n_products):
        line = rng.choice(lines)
        clusters = PRODUCT_LINES[line]["clusters"]
        chosen = rng.sample(clusters, min(4, len(clusters)))
        # one word per synonym cluster, like real product titles
        title = " ".join(rng.choice(cluster) for cluster in chosen)
        database.insert("products", {
            "pid": pid,
            "title": title,
            "bid": rng.choice(brand_ids[line]),
            "gid": lines.index(line),
            "price": round(rng.uniform(9.0, 399.0), 2),
        })
        for _ in range(rng.randint(0, 2)):
            body = " ".join(rng.sample(REVIEW_WORDS, 3))
            database.insert("reviews", {
                "rid": rid, "pid": pid, "body": body,
                "stars": rng.randint(1, 5),
            })
            rid += 1
    return database


def main() -> None:
    database = build_catalog()
    print(database.describe())

    reformulator = Reformulator.from_database(database)
    print(f"\nTAT graph: {reformulator.graph}\n")

    for query in (["wireless", "headphones"], ["espresso", "grinder"]):
        print(f"shopper query: {' '.join(query)!r}")
        for suggestion in reformulator.reformulate(query, k=5):
            print(f"  {suggestion.score:.3e}  {suggestion.text}")
        print()

    print(
        "similar terms of 'wireless' (note the synonym cluster "
        "'cordless'/'bluetooth' surfacing without ever co-occurring):"
    )
    for term, score in reformulator.similarity.similar_terms("wireless", 12):
        print(f"  {score:.4f}  {term}")


if __name__ == "__main__":
    main()
