#!/usr/bin/env python
"""Exploring the offline stage: similarity, closeness and the TAT graph.

Walks through the paper's Section IV machinery piece by piece:

* the TAT graph statistics of the corpus;
* contextual random-walk similarity vs frequent co-occurrence (Table II);
* term closeness and close conferences (Table I);
* similar authors found through shared venues/vocabulary instead of
  co-authorship (the paper's "Jiawei Han" case).

Run:  python examples/term_relations_offline.py
"""

from repro import (
    ClosenessExtractor,
    CooccurrenceSimilarity,
    InvertedIndex,
    SimilarityExtractor,
    SynthConfig,
    TATGraph,
    synthesize_dblp,
)


def main() -> None:
    corpus = synthesize_dblp(
        SynthConfig(n_authors=200, n_papers=800, n_conferences=20, seed=9)
    )
    database = corpus.database

    index = InvertedIndex(database).build()
    graph = TATGraph(database, index)
    print("TAT graph:", graph.stats())

    walk = SimilarityExtractor(graph)
    cooc = CooccurrenceSimilarity(graph)
    closeness = ClosenessExtractor(graph)

    target = "uncertain"
    print(f"\n== similar terms of {target!r} ==")
    print("contextual random walk:")
    for term, score in walk.similar_terms(target, 10):
        print(f"  {score:.4f}  {term}")
    print("frequent co-occurrence:")
    for term, score in cooc.similar_terms(target, 10):
        print(f"  {score:.4f}  {term}")

    print(f"\n== close terms of {target!r} (Eq 3) ==")
    node_id = graph.resolve_text_one(target)
    for other_id, score in closeness.close_terms(node_id, 10):
        print(f"  {score:.4f}  {graph.node(other_id)}")

    print(f"\n== close conferences of {target!r} ==")
    for other_id, score in closeness.close_terms_in_class(
        node_id, ("conferences", "name"), 5
    ):
        print(f"  {score:.6f}  {graph.node(other_id).text}")

    # The author case: similar researchers beyond co-authorship.
    writes = database.table("writes")
    counts = {}
    for row in writes.scan():
        counts[row["aid"]] = counts.get(row["aid"], 0) + 1
    top_aid = max(counts, key=lambda a: (counts[a], -a))
    name = str(database.table("authors").get(top_aid)["name"])
    print(f"\n== similar authors of the most prolific author {name!r} ==")
    for author, score in walk.similar_terms(name, 8):
        print(f"  {score:.5f}  {author}")


if __name__ == "__main__":
    main()
