"""Graph-layer primitives of the incremental delta-ingest path.

Covers: in-place adjacency extension with exact idf reweighting
(``TATGraph.add_tuples`` / ``add_terms``), batch-composition invariance of
the direct walk solver, warm-started power iteration, adjacency-version
gating of the engine's cached LU, and dirty-set closeness invalidation.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.errors import GraphError, IndexError_
from repro.graph.adjacency import Adjacency, AdjacencyBuilder
from repro.graph.closeness import ClosenessExtractor
from repro.graph.nodes import Node
from repro.graph.randomwalk import RandomWalkEngine
from repro.graph.similarity import SimilarityExtractor
from repro.graph.tat import TATGraph
from repro.index.inverted import FieldTerm, InvertedIndex, Posting
from repro.storage.database import Database

from tests.conftest import build_toy_database


NEW_PAPER = {
    "pid": 4, "title": "uncertain pattern answering", "cid": 1, "year": 2012,
}
NEW_WRITE = {"wid": 4, "aid": 2, "pid": 4}


def extended_setup():
    """Toy graph extended in place with one new paper + authorship row."""
    db = build_toy_database()
    graph = TATGraph(db, InvertedIndex(db))
    refs = [db.insert("papers", dict(NEW_PAPER)),
            db.insert("writes", dict(NEW_WRITE))]
    dirty = graph.add_tuples(refs)
    return db, graph, refs, dirty


def rebuilt_graph(db: Database) -> TATGraph:
    """From-scratch graph over the same database contents."""
    return TATGraph(db, InvertedIndex(db))


def permuted_matrix(src: TATGraph, dst: TATGraph) -> sparse.csr_matrix:
    """src's adjacency with node ids mapped into dst's id space."""
    perm = np.empty(src.n_nodes, dtype=np.int64)
    for nid in range(src.n_nodes):
        perm[nid] = dst.registry.id_of(src.registry.node_of(nid))
    coo = src.adjacency.matrix.tocoo()
    return sparse.csr_matrix(
        (coo.data, (perm[coo.row], perm[coo.col])), shape=coo.shape
    )


class TestAdjacencyExtend:
    def build(self):
        builder = AdjacencyBuilder()
        builder.add_edge(0, 1, 2.0)
        builder.add_edge(1, 2, 1.0)
        return builder.freeze(3)

    def test_grows_and_accumulates(self):
        adj = self.build()
        adj.extend(4, [(2, 3, 1.5), (0, 1, 1.0)])
        assert adj.n_nodes == 4
        assert adj.matrix[0, 1] == 3.0  # accumulated onto existing edge
        assert adj.matrix[2, 3] == 1.5
        assert adj.matrix[3, 2] == 1.5  # symmetric

    def test_scale_rescales_existing_entries_only(self):
        adj = self.build()
        adj.extend(4, [(0, 3, 1.0)], scale=np.array([2.0, 1.0, 1.0]))
        assert adj.matrix[0, 1] == 4.0  # scale[0] * scale[1] * 2.0
        assert adj.matrix[1, 2] == 1.0
        assert adj.matrix[0, 3] == 1.0  # new edges land unscaled

    def test_version_bump_and_transition_refresh(self):
        adj = self.build()
        t0 = adj.transition_matrix()
        assert adj.version == 0
        adj.extend(3, [(0, 2, 1.0)])
        assert adj.version == 1
        t1 = adj.transition_matrix()
        assert t1 is not t0
        assert float(t1.sum(axis=0).max()) == pytest.approx(1.0)

    def test_rejects_bad_input(self):
        adj = self.build()
        with pytest.raises(GraphError):
            adj.extend(2, [])  # shrink
        with pytest.raises(GraphError):
            adj.extend(3, [(0, 0, 1.0)])  # self loop
        with pytest.raises(GraphError):
            adj.extend(3, [(0, 5, 1.0)])  # out of range
        with pytest.raises(GraphError):
            adj.extend(3, [(0, 2, -1.0)])  # nonpositive weight
        with pytest.raises(GraphError):
            adj.extend(3, [], scale=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(GraphError):
            adj.extend(3, [], scale=np.ones(2))


class TestAddTuples:
    def test_matches_rebuild_up_to_node_order(self):
        db, graph, _refs, _dirty = extended_setup()
        fresh = rebuilt_graph(db)
        assert graph.stats() == fresh.stats()
        diff = abs(permuted_matrix(graph, fresh) - fresh.adjacency.matrix)
        assert (diff.max() if diff.nnz else 0.0) < 1e-12

    def test_index_statistics_match_fresh_build(self):
        db, graph, _refs, _dirty = extended_setup()
        fresh_index = InvertedIndex(db).build()
        assert graph.index.doc_count == fresh_index.doc_count
        assert set(graph.index.terms()) == set(fresh_index.terms())
        for term in fresh_index.terms():
            assert graph.index.df(term) == fresh_index.df(term)
            assert graph.index.idf(term) == fresh_index.idf(term)
            assert sorted(
                (p.ref, p.tf) for p in graph.index.postings(term)
            ) == sorted((p.ref, p.tf) for p in fresh_index.postings(term))
        for field in fresh_index.fields():
            assert graph.index.field_cardinality(
                field
            ) == fresh_index.field_cardinality(field)

    def test_dirty_set_contents(self):
        db, graph, refs, dirty = extended_setup()
        for ref in refs:
            assert graph.tuple_node_id(ref) in dirty
        # terms of the new title (new or with a new posting) are dirty
        for text in ("uncertain", "pattern", "answering"):
            term = FieldTerm(("papers", "title"), text)
            assert graph.term_node_id(term) in dirty
        # FK partners of the new rows are dirty
        assert graph.tuple_node_id(("conferences", 1)) in dirty
        assert graph.tuple_node_id(("authors", 2)) in dirty
        # an untouched far-away node is not
        assert graph.tuple_node_id(("papers", 0)) not in dirty

    def test_empty_refs_is_noop(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        version = graph.adjacency.version
        assert graph.add_tuples([]) == set()
        assert graph.adjacency.version == version

    def test_double_add_raises(self):
        db, graph, refs, _dirty = extended_setup()
        with pytest.raises((GraphError, IndexError_)):
            graph.add_tuples([refs[0]])

    def test_walks_match_rebuild(self):
        """Walk fixed points on the extended graph equal the rebuilt
        graph's (same node ids looked up through the registry)."""
        db, graph, _refs, _dirty = extended_setup()
        fresh = rebuilt_graph(db)
        sim_ext = SimilarityExtractor(graph)
        sim_fresh = SimilarityExtractor(fresh)
        term = FieldTerm(("papers", "title"), "probabilistic")
        got = {
            str(graph.node(s.node_id)): s.score
            for s in sim_ext.similar_nodes(graph.term_node_id(term), 5)
        }
        want = {
            str(fresh.node(s.node_id)): s.score
            for s in sim_fresh.similar_nodes(fresh.term_node_id(term), 5)
        }
        assert set(got) == set(want)
        for key, score in want.items():
            assert got[key] == pytest.approx(score, rel=1e-9)


class TestAddTerms:
    def test_out_of_band_vocabulary(self):
        db = build_toy_database()
        index = InvertedIndex(db).build()
        graph = TATGraph(db, index)
        # inject a term into the index after the graph was built, with
        # postings on existing tuples (out-of-band vocabulary delta)
        term = FieldTerm(("papers", "title"), "zzznovel")
        index._postings[term] = [
            Posting(("papers", 0), 1), Posting(("papers", 3), 2),
        ]
        dirty = graph.add_terms([term])
        term_id = graph.term_node_id(term)
        assert term_id in dirty
        assert graph.tuple_node_id(("papers", 0)) in dirty
        assert graph.tuple_node_id(("papers", 3)) in dirty
        weights = dict(graph.neighbors(term_id))
        idf = index.idf(term)
        assert weights[graph.tuple_node_id(("papers", 0))] == 1 * idf
        assert weights[graph.tuple_node_id(("papers", 3))] == 2 * idf
        assert graph.resolve_text("zzznovel") == [term_id]

    def test_existing_terms_are_skipped(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        term = FieldTerm(("papers", "title"), "probabilistic")
        version = graph.adjacency.version
        assert graph.add_terms([term]) == set()
        assert graph.adjacency.version == version


class TestDirectSolverBatchInvariance:
    def test_bitwise_independent_of_batch_composition(self, small_graph):
        engine = RandomWalkEngine(small_graph.adjacency)
        sim = SimilarityExtractor(small_graph, engine=engine)
        node_ids = [
            small_graph.term_node_id(t)
            for t in list(small_graph.index.terms())[:12]
        ]
        prefs = sim.preference.preference_matrix(node_ids)
        full = engine.walk_many_result(prefs, method="direct").scores
        # one column alone
        alone = engine.walk_many_result(prefs[:, 3:4], method="direct").scores
        assert np.array_equal(full[:, 3], alone[:, 0])
        # a different batch split
        split = np.hstack([
            engine.walk_many_result(prefs[:, :5], method="direct").scores,
            engine.walk_many_result(prefs[:, 5:], method="direct").scores,
        ])
        assert np.array_equal(full, split)

    def test_direct_matches_iterative(self, small_graph):
        engine = RandomWalkEngine(small_graph.adjacency)
        sim = SimilarityExtractor(small_graph, engine=engine)
        node_ids = [
            small_graph.term_node_id(t)
            for t in list(small_graph.index.terms())[:4]
        ]
        prefs = sim.preference.preference_matrix(node_ids)
        direct = engine.walk_many_result(prefs, method="direct")
        iterative = engine.walk_many_result(prefs, method="iterative")
        assert direct.converged
        np.testing.assert_allclose(
            direct.scores, iterative.scores, atol=5e-9
        )


class TestWarmStart:
    def test_seeding_with_fixed_point_converges_immediately(self, small_graph):
        engine = RandomWalkEngine(small_graph.adjacency)
        sim = SimilarityExtractor(small_graph, engine=engine)
        node_ids = [
            small_graph.term_node_id(t)
            for t in list(small_graph.index.terms())[:8]
        ]
        prefs = sim.preference.preference_matrix(node_ids)
        cold = engine.walk_many_result(prefs, method="iterative")
        warm = engine.walk_many_result(
            prefs, method="iterative", seeds=cold.scores
        )
        assert warm.converged
        assert warm.iterations <= 2
        assert warm.iterations < cold.iterations
        np.testing.assert_allclose(warm.scores, cold.scores, atol=1e-9)

    def test_seed_validation(self, small_graph):
        engine = RandomWalkEngine(small_graph.adjacency)
        n = small_graph.adjacency.n_nodes
        prefs = np.ones((n, 2)) / n
        with pytest.raises(GraphError):
            engine.walk_many_result(
                prefs, method="iterative", seeds=np.ones((n, 3))
            )
        with pytest.raises(GraphError):
            engine.walk_many_result(
                prefs, method="iterative", seeds=np.zeros((n, 2))
            )


class TestEngineVersionGating:
    def test_lu_kept_while_graph_unchanged(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        engine = RandomWalkEngine(graph.adjacency)
        n = graph.n_nodes
        prefs = np.ones((n, 2)) / n
        engine.walk_many_result(prefs, method="direct")
        lu_first = engine._lu
        engine.walk_many_result(prefs, method="direct")
        assert engine._lu is lu_first  # no refactorization without a delta

    def test_refactorizes_after_extend(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        engine = RandomWalkEngine(graph.adjacency)
        n0 = graph.n_nodes
        engine.walk_many_result(np.ones((n0, 1)) / n0, method="direct")
        lu_first = engine._lu
        db.insert("papers", dict(NEW_PAPER))
        graph.add_tuples([("papers", NEW_PAPER["pid"])])
        n1 = graph.n_nodes
        assert n1 > n0
        result = engine.walk_many_result(np.ones((n1, 1)) / n1, method="direct")
        assert result.converged
        assert result.scores.shape[0] == n1
        assert engine._lu is not lu_first
        # single-vector path syncs too
        single = engine.walk(np.ones(n1) / n1)
        assert single.scores.shape == (n1,)


class TestClosenessDirtySet:
    def test_clean_rows_bit_identical_after_extend(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        extractor = ClosenessExtractor(graph, max_depth=2, beam_width=None)
        before = {
            nid: extractor.close_terms(nid, 50)
            for nid in graph.registry.term_ids()
        }
        db.insert("papers", dict(NEW_PAPER))
        db.insert("writes", dict(NEW_WRITE))
        dirty = graph.add_tuples([
            ("papers", NEW_PAPER["pid"]), ("writes", NEW_WRITE["wid"]),
        ])
        affected = extractor.invalidate(dirty)
        assert affected  # something is within 2 hops of the new paper
        for nid, row in before.items():
            if nid in affected:
                continue
            assert extractor.close_terms(nid, 50) == row

    def test_affected_rows_match_fresh_extractor(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        extractor = ClosenessExtractor(graph, max_depth=2, beam_width=None)
        for nid in graph.registry.term_ids():
            extractor.close_terms(nid, 50)
        db.insert("papers", dict(NEW_PAPER))
        dirty = graph.add_tuples([("papers", NEW_PAPER["pid"])])
        affected = extractor.invalidate(dirty)
        fresh = ClosenessExtractor(graph, max_depth=2, beam_width=None)
        for nid in affected:
            assert extractor.close_terms(nid, 50) == fresh.close_terms(nid, 50)

    def test_affected_sources_is_ball_restricted(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        extractor = ClosenessExtractor(graph, max_depth=2, beam_width=None)
        pid0 = graph.tuple_node_id(("papers", 0))
        affected = extractor.affected_sources([pid0])
        # depth 2 from p0: its own title terms (distance 1)… plus terms of
        # tuples at distance 1 — but no term of the unrelated icdm papers
        assert graph.term_node_id(
            FieldTerm(("papers", "title"), "query")
        ) in affected
        assert graph.term_node_id(
            FieldTerm(("papers", "title"), "mining")
        ) not in affected
