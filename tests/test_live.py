"""Unit tests for repro.live (mutable-corpus reformulation)."""

import pytest

from repro.core.reformulator import ReformulatorConfig
from repro.live import LiveReformulator

from tests.conftest import build_toy_database


@pytest.fixture()
def live():
    return LiveReformulator(
        build_toy_database(), ReformulatorConfig(n_candidates=6)
    )


class TestLifecycle:
    def test_starts_stale(self, live):
        assert live.is_stale
        assert live.version == 0

    def test_first_query_builds(self, live):
        live.reformulate(["probabilistic", "query"], k=2)
        assert live.version == 1
        assert not live.is_stale

    def test_queries_without_mutation_reuse_pipeline(self, live):
        live.reformulate(["probabilistic", "query"], k=2)
        pipeline = live.pipeline()
        live.reformulate(["pattern", "mining"], k=2)
        assert live.pipeline() is pipeline
        assert live.version == 1

    def test_insert_marks_stale(self, live):
        live.reformulate(["probabilistic", "query"], k=2)
        live.insert("papers", {
            "pid": 50, "title": "probabilistic mining study",
            "cid": 1, "year": 2012,
        })
        assert live.is_stale
        live.reformulate(["probabilistic", "query"], k=2)
        assert live.version == 2

    def test_insert_many(self, live):
        n = live.insert_many("authors", [
            {"aid": 50, "name": "new one"},
            {"aid": 51, "name": "new two"},
        ])
        assert n == 2 and live.is_stale

    def test_empty_insert_many_not_stale(self, live):
        live.pipeline()
        live.insert_many("authors", [])
        assert not live.is_stale

    def test_invalidate_after_oob_mutation(self, live):
        live.pipeline()
        live.database.insert("authors", {"aid": 60, "name": "oob"})
        assert not live.is_stale  # wrapper cannot see it...
        live.invalidate()
        assert live.is_stale


class TestFreshness:
    def test_new_vocabulary_becomes_suggestible(self, live):
        """Inserting papers that co-locate two previously unrelated terms
        must change the similar lists after rebuild."""
        before = {t for t, _s in live.similar_terms("probabilistic", 10)}
        assert "stream" not in before
        for pid in range(60, 64):
            live.insert("papers", {
                "pid": pid,
                "title": "probabilistic stream processing",
                "cid": 0,
                "year": 2012,
            })
        after = {t for t, _s in live.similar_terms("probabilistic", 10)}
        assert "stream" in after

    def test_fk_violations_still_enforced(self, live):
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            live.insert("papers", {
                "pid": 70, "title": "x", "cid": 404, "year": 1,
            })

    def test_best_delegates(self, live):
        best = live.best(["probabilistic", "query"])
        assert best.score > 0


class TestStoreBackedServing:
    def test_relations_path_serves_from_store(self, tmp_path):
        from repro.graph.tat import TATGraph
        from repro.index.inverted import InvertedIndex
        from repro.offline import OfflinePrecomputer, TermRelationStore

        database = build_toy_database()
        graph = TATGraph(database, InvertedIndex(database).build())
        store = OfflinePrecomputer(graph, n_similar=8).build_store()
        root = store.save_sharded(tmp_path / "v2", n_shards=4)

        live = LiveReformulator(
            database,
            ReformulatorConfig(n_candidates=5),
            relations=root,
        )
        backend = live.pipeline().similarity
        assert isinstance(backend, TermRelationStore)
        out = live.reformulate(["probabilistic", "query"], k=3)
        assert out and all(s.score > 0 for s in out)

    def test_rebuild_keeps_store_for_known_terms(self, tmp_path):
        from repro.graph.tat import TATGraph
        from repro.index.inverted import InvertedIndex
        from repro.offline import OfflinePrecomputer

        database = build_toy_database()
        graph = TATGraph(database, InvertedIndex(database).build())
        store = OfflinePrecomputer(graph, n_similar=8).build_store()
        root = store.save_sharded(tmp_path / "v2", n_shards=4)

        live = LiveReformulator(
            database, ReformulatorConfig(n_candidates=5), relations=root
        )
        before = live.reformulate(["probabilistic", "query"], k=3)
        version = live.version
        live.insert("papers", {
            "pid": 80, "title": "probabilistic stream processing",
            "cid": 0, "year": 2013,
        })
        after = live.reformulate(["probabilistic", "query"], k=3)
        assert live.version == version + 1  # pipeline rebuilt...
        # ...but stored relations for the old vocabulary still serve
        assert [s.text for s in after] == [s.text for s in before]


def _build_sharded_live(tmp_path, n_candidates=5):
    from repro.graph.tat import TATGraph
    from repro.index.inverted import InvertedIndex
    from repro.offline import OfflinePrecomputer

    database = build_toy_database()
    graph = TATGraph(database, InvertedIndex(database).build())
    store = OfflinePrecomputer(graph, n_similar=8).build_store()
    root = store.save_sharded(tmp_path / "v2", n_shards=4)
    return LiveReformulator(
        database, ReformulatorConfig(n_candidates=n_candidates),
        relations=root,
    )


class TestStoreCache:
    def test_store_loaded_once_across_rebuilds(self, tmp_path):
        """Rebuilds reuse the loaded store (rebound to the new graph)
        instead of re-reading shard files from disk every time."""
        live = _build_sharded_live(tmp_path)
        live.reformulate(["probabilistic", "query"], k=2)
        store_before = live.pipeline().similarity
        live.insert("papers", {
            "pid": 90, "title": "probabilistic stream processing",
            "cid": 0, "year": 2013,
        })
        live.reformulate(["probabilistic", "query"], k=2)
        store_after = live.pipeline().similarity
        assert store_after is store_before
        assert store_after.graph is live.pipeline().graph

    def test_reload_relations_rereads_from_disk(self, tmp_path):
        live = _build_sharded_live(tmp_path)
        live.reformulate(["probabilistic", "query"], k=2)
        store_before = live.pipeline().similarity
        version = live.version
        live.reload_relations()
        assert live.is_stale
        live.reformulate(["probabilistic", "query"], k=2)
        assert live.version == version + 1
        assert live.pipeline().similarity is not store_before

    def test_cached_store_still_serves_correctly(self, tmp_path):
        live = _build_sharded_live(tmp_path)
        before = live.reformulate(["probabilistic", "query"], k=3)
        live.invalidate()
        after = live.reformulate(["probabilistic", "query"], k=3)
        assert [s.text for s in after] == [s.text for s in before]
        assert [s.score for s in after] == [s.score for s in before]


class TestServingMetrics:
    def test_rebuild_and_staleness_metrics(self, tmp_path):
        from repro import obs

        live = _build_sharded_live(tmp_path)
        obs.reset()
        with obs.enabled():
            live.reformulate(["probabilistic", "query"], k=2)
            live.insert("papers", {
                "pid": 91, "title": "probabilistic stream processing",
                "cid": 0, "year": 2013,
            })
            live.invalidate()
            live.reformulate(["probabilistic", "query"], k=2)
        registry = obs.registry()
        assert registry.get("repro_live_rebuilds_total").value == 2.0
        assert registry.get("repro_live_rebuild_seconds").count == 2
        # second query arrived with two pending mutations
        assert registry.get("repro_live_staleness_at_query").value == 2.0
        obs.reset()

    def test_no_metrics_recorded_when_disabled(self, tmp_path):
        from repro import obs

        live = _build_sharded_live(tmp_path)
        obs.reset()
        assert not obs.is_enabled()
        live.reformulate(["probabilistic", "query"], k=2)
        assert obs.registry().get("repro_live_rebuilds_total") is None
        obs.reset()
