"""Delta ingest: layered stores, DeltaIngestor exactness, compaction.

The load-bearing claim under test: after a ``DeltaIngestor.ingest`` run,
the layered store serves rows that a from-scratch offline build on the
merged corpus would have produced — bit for bit for every recomputed
similar list and for *every* closeness row (stored, ball-invalidated and
lazily recomputed alike).  Similar rows outside the ingested term set
keep their stored bits (documented idf-drift staleness) until
``compact()`` folds the chain into a fresh base.
"""

import json
import threading

import pytest

from repro.data.dblp_synth import SynthConfig, dblp_schema, synthesize_dblp
from repro.errors import ReproError
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.offline import (
    DeltaIngestor,
    OfflinePrecomputer,
    TermRelationStore,
)
from repro.offline_store import (
    ShardedTermRelationStore,
    shard_of,
    write_store_v2,
)
from repro.storage import layers as layer_io
from repro.storage.database import Database
from repro.storage.layers import LayeredTermRelationStore


N_SIMILAR = 8
CLOSENESS_TOP = 30


def _split_corpus(n_held=2, seed=13):
    """Synthesize a corpus and hold out the last *n_held* papers.

    Returns (base_database, delta_rows) where *delta_rows* are the
    ``{"table", "row"}`` ingest payloads for the held-out papers and
    their writes rows.
    """
    full = synthesize_dblp(
        SynthConfig(n_authors=40, n_papers=120, n_conferences=6, seed=seed)
    ).database
    papers = list(full.table("papers").scan())
    writes = list(full.table("writes").scan())
    held = {p["pid"] for p in papers[-n_held:]}
    delta_rows = [
        {"table": "papers", "row": p} for p in papers if p["pid"] in held
    ] + [
        {"table": "writes", "row": w} for w in writes if w["pid"] in held
    ]
    base = Database(dblp_schema())
    for name in ("conferences", "authors"):
        for row in full.table(name).scan():
            base.insert(name, row)
    for paper in papers:
        if paper["pid"] not in held:
            base.insert("papers", paper)
    for write in writes:
        if write["pid"] not in held:
            base.insert("writes", write)
    return base, delta_rows


def _build_base_store(database, path, n_shards=4):
    graph = TATGraph(database, InvertedIndex(database))
    store = OfflinePrecomputer(
        graph, n_similar=N_SIMILAR, closeness_top=CLOSENESS_TOP
    ).build_store(walk_method="direct")
    return write_store_v2(
        store,
        path,
        n_shards=n_shards,
        build_info={"n_similar": N_SIMILAR, "closeness_top": CLOSENESS_TOP},
    )


def _oracle_store(database):
    """From-scratch build over the database's *current* contents."""
    graph = TATGraph(database, InvertedIndex(database))
    return graph, OfflinePrecomputer(
        graph, n_similar=N_SIMILAR, closeness_top=CLOSENESS_TOP
    ).build_store(walk_method="direct")


@pytest.fixture(scope="module")
def ingested(tmp_path_factory):
    """One base build + one ingest, shared by the equivalence tests."""
    base_db, delta_rows = _split_corpus()
    root = _build_base_store(base_db, tmp_path_factory.mktemp("store") / "s")
    ingestor = DeltaIngestor(base_db, root)
    stats = ingestor.ingest(delta_rows)
    graph, oracle = _oracle_store(base_db)  # base_db now holds all rows
    layered = TermRelationStore.load(root, graph)
    return {
        "db": base_db,
        "root": root,
        "stats": stats,
        "oracle": oracle,
        "layered": layered,
        "ingestor": ingestor,
        "delta_rows": delta_rows,
    }


class TestLayersModule:
    def test_read_chain_absent_is_empty(self, tmp_path):
        chain = layer_io.read_chain(tmp_path)
        assert chain == {"format": layer_io.LAYER_FORMAT, "layers": []}
        assert layer_io.latest_epoch(tmp_path) == 0

    def test_read_chain_corrupt_names_path(self, tmp_path):
        path = layer_io.chain_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError, match=str(path)):
            layer_io.read_chain(tmp_path)

    def test_read_chain_rejects_unknown_format(self, tmp_path):
        path = layer_io.chain_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"format": "delta-layers-v9", "layers": []}),
            encoding="utf-8",
        )
        with pytest.raises(ReproError, match="delta-layers-v9"):
            layer_io.read_chain(tmp_path)

    def test_write_layer_enforces_epoch_monotonicity(
        self, tmp_path, toy_graph
    ):
        delta = TermRelationStore(toy_graph)
        layer_io.write_layer(
            tmp_path, delta, epoch=3, rows=[], invalidated=[], params={}
        )
        with pytest.raises(ReproError, match="not newer"):
            layer_io.write_layer(
                tmp_path, delta, epoch=3, rows=[], invalidated=[], params={}
            )
        assert layer_io.latest_epoch(tmp_path) == 3

    def test_pending_rows_replay_feed(self, tmp_path, toy_graph):
        delta = TermRelationStore(toy_graph)
        rows_a = [{"table": "papers", "row": {"pid": 90}}]
        rows_b = [{"table": "papers", "row": {"pid": 91}}]
        layer_io.write_layer(
            tmp_path, delta, epoch=1, rows=rows_a, invalidated=[], params={}
        )
        layer_io.write_layer(
            tmp_path, delta, epoch=2, rows=rows_b, invalidated=[], params={}
        )
        assert layer_io.pending_rows(tmp_path, 0) == [
            (1, rows_a), (2, rows_b)
        ]
        assert layer_io.pending_rows(tmp_path, 1) == [(2, rows_b)]
        assert layer_io.pending_rows(tmp_path, 2) == []

    def test_clear_layers(self, tmp_path, toy_graph):
        delta = TermRelationStore(toy_graph)
        layer_io.write_layer(
            tmp_path, delta, epoch=1, rows=[], invalidated=[], params={}
        )
        layer_io.clear_layers(tmp_path)
        assert not layer_io.layers_root(tmp_path).exists()
        assert layer_io.latest_epoch(tmp_path) == 0


class TestLoadErrors:
    """Satellite: TermRelationStore.load must not swallow manifest errors."""

    def test_corrupt_v2_manifest_raises_naming_path(
        self, tmp_path, toy_graph
    ):
        root = tmp_path / "store"
        root.mkdir()
        manifest = root / "manifest.json"
        manifest.write_text("{broken", encoding="utf-8")
        with pytest.raises(ReproError, match="manifest"):
            TermRelationStore.load(root, toy_graph)

    def test_missing_manifest_still_reports_not_a_store(
        self, tmp_path, toy_graph
    ):
        root = tmp_path / "empty"
        root.mkdir()
        with pytest.raises(ReproError):
            TermRelationStore.load(root, toy_graph)


class TestShardCacheThreadSafety:
    """Satellite: concurrent `_get` must not corrupt the shard LRU."""

    def test_hammer(self, tmp_path, small_graph):
        store = OfflinePrecomputer(
            small_graph, n_similar=4, closeness_top=10
        ).build_store(walk_method="direct")
        root = write_store_v2(store, tmp_path / "store", n_shards=8)
        sharded = ShardedTermRelationStore.load(
            root, small_graph, cache_shards=2
        )
        keys = sorted(k for k, _ in store._items())
        assert keys
        errors = []

        def worker(offset):
            try:
                for i in range(200):
                    key = keys[(offset + i) % len(keys)]
                    relations = sharded._get(key)
                    assert relations is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i * 7,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = sharded.cache_stats()
        # every lookup is counted exactly once under the lock
        assert stats["hits"] + stats["misses"] == 8 * 200
        assert stats["resident_shards"] <= 2


class TestDeltaIngestor:
    def test_stats_shape(self, ingested):
        stats = ingested["stats"]
        assert stats.epoch == 1
        assert stats.n_rows == len(ingested["delta_rows"])
        assert stats.n_recomputed > 0
        assert stats.elapsed_seconds > 0

    def test_load_wraps_layered(self, ingested):
        layered = ingested["layered"]
        assert isinstance(layered, LayeredTermRelationStore)
        assert layered.epoch == 1
        assert layered.n_layers == 1
        assert layered.base_format_version() == 2

    def test_vocabulary_matches_oracle(self, ingested):
        assert set(ingested["layered"]._keys()) == set(
            ingested["oracle"]._keys()
        )

    def test_recomputed_rows_bit_identical(self, ingested):
        layered, oracle = ingested["layered"], ingested["oracle"]
        recomputed = set(layered._layers[0].store._keys())
        assert recomputed
        for key in recomputed:
            got, want = layered._get(key), oracle._get(key)
            assert got.similar == want.similar, key
            assert got.closeness == want.closeness, key

    def test_every_closeness_row_bit_identical(self, ingested):
        """Stored (ball argument) and lazy (re-BFS) rows are both exact."""
        layered, oracle = ingested["layered"], ingested["oracle"]
        for key in oracle._keys():
            assert layered._get(key).closeness == oracle._get(key).closeness, key

    def test_invalidated_rows_served_lazily(self, ingested):
        layered = ingested["layered"]
        invalidated = layered._layers[0].invalidated
        recomputed = set(layered._layers[0].store._keys())
        assert invalidated
        assert not (invalidated & recomputed)
        probe = sorted(invalidated)[0]
        layered._get(probe)
        assert probe in layered._closeness_cache

    def test_layered_store_is_read_only(self, ingested):
        with pytest.raises(ReproError, match="read-only"):
            ingested["layered"].put(("papers", "title", "x"), [], {})

    def test_rejects_bad_rows(self, ingested):
        ingestor = ingested["ingestor"]
        with pytest.raises(ReproError, match="at least one row"):
            ingestor.ingest([])
        with pytest.raises(ReproError, match="table"):
            ingestor.ingest([{"row": {"pid": 1}}])

    def test_rejects_file_backed_store(self, tmp_path, toy_db):
        v1 = tmp_path / "store.json"
        v1.write_text("{}", encoding="utf-8")
        with pytest.raises(ReproError, match="directory-backed"):
            DeltaIngestor(toy_db, v1)

    def test_param_precedence_layer_over_base(self, ingested, tmp_path):
        # the layer recorded n_similar=8; a fresh ingestor picks it up
        ingestor = DeltaIngestor(ingested["db"], ingested["root"])
        assert ingestor.n_similar == N_SIMILAR
        assert ingestor.closeness_top == CLOSENESS_TOP
        explicit = DeltaIngestor(
            ingested["db"], ingested["root"], n_similar=3
        )
        assert explicit.n_similar == 3


class TestMultiLayer:
    def test_two_ingests_stack_and_stay_exact(self, tmp_path):
        base_db, delta_rows = _split_corpus(n_held=4, seed=21)
        first, second = delta_rows[: len(delta_rows) // 2], delta_rows[
            len(delta_rows) // 2:
        ]
        # writes rows in `second` may reference papers in `second`
        first = [r for r in first if r["table"] == "papers"]
        second = [r for r in delta_rows if r not in first]
        root = _build_base_store(base_db, tmp_path / "store")
        ingestor = DeltaIngestor(base_db, root)
        assert ingestor.ingest(first).epoch == 1
        assert ingestor.ingest(second).epoch == 2
        graph, oracle = _oracle_store(base_db)
        layered = TermRelationStore.load(root, graph)
        assert layered.n_layers == 2
        assert layered.epoch == 2
        assert set(layered._keys()) == set(oracle._keys())
        for key in oracle._keys():
            assert (
                layered._get(key).closeness == oracle._get(key).closeness
            ), key
        recomputed_last = set(layered._layers[-1].store._keys())
        for key in recomputed_last:
            assert layered._get(key).similar == oracle._get(key).similar, key

    def test_compact_erases_staleness(self, tmp_path):
        base_db, delta_rows = _split_corpus(n_held=2, seed=34)
        root = _build_base_store(base_db, tmp_path / "store")
        ingestor = DeltaIngestor(base_db, root)
        ingestor.ingest(delta_rows)
        ingestor.compact()
        graph, oracle = _oracle_store(base_db)
        store = TermRelationStore.load(root, graph)
        # chain gone: plain sharded base again
        assert isinstance(store, ShardedTermRelationStore)
        assert not isinstance(store, LayeredTermRelationStore)
        assert layer_io.latest_epoch(root) == 0
        assert set(store._keys()) == set(oracle._keys())
        for key in oracle._keys():
            got, want = store._get(key), oracle._get(key)
            assert got.similar == want.similar, key
            assert got.closeness == want.closeness, key
        assert store.build_info().get("compacted") is True


class TestGraphRebind:
    def test_setter_fans_out_and_clears_lazy_cache(self, ingested):
        layered = ingested["layered"]
        probe = sorted(layered._layers[0].invalidated)[0]
        layered._get(probe)
        assert layered._closeness_cache
        graph = layered.graph
        layered.graph = graph  # rebind (live layer does this every rebuild)
        assert not layered._closeness_cache
        assert layered.base.graph is graph
        assert layered._layers[0].store.graph is graph


class TestLiveIngest:
    """LiveReformulator.ingest / sync_ingest over the layer chain."""

    def _probe_keywords(self, delta_rows):
        title = next(
            r["row"]["title"] for r in delta_rows if r["table"] == "papers"
        )
        return title.split()[:2]

    def test_ingest_then_query_matches_full_rebuild(self, tmp_path):
        from repro.core.reformulator import ReformulatorConfig
        from repro.live import LiveReformulator
        from repro.server.app import scored_to_dict

        base_db, delta_rows = _split_corpus(n_held=2, seed=55)
        root = _build_base_store(base_db, tmp_path / "store")
        live = LiveReformulator(
            base_db, ReformulatorConfig(), relations=root
        )
        stats = live.ingest(delta_rows)
        assert stats.epoch == 1
        assert live.ingest_epoch == 1
        assert live.is_stale

        # oracle: same merged corpus, from-scratch offline build
        graph, _ = _oracle_store(base_db)
        oracle_root = _build_base_store(base_db, tmp_path / "oracle")
        oracle = LiveReformulator(
            base_db, ReformulatorConfig(), relations=oracle_root
        )
        keywords = self._probe_keywords(delta_rows)
        got = [
            scored_to_dict(s) for s in live.reformulate(keywords, k=5)
        ]
        want = [
            scored_to_dict(s) for s in oracle.reformulate(keywords, k=5)
        ]
        assert got == want

    def test_sync_ingest_replays_chain(self, tmp_path):
        from repro.core.reformulator import ReformulatorConfig
        from repro.live import LiveReformulator
        from repro.server.app import scored_to_dict

        base_db, delta_rows = _split_corpus(n_held=2, seed=89)
        root = _build_base_store(base_db, tmp_path / "store")
        live_a = LiveReformulator(
            base_db, ReformulatorConfig(), relations=root
        )
        live_a.ingest(delta_rows)
        # ingesting process is already at the tip: nothing to replay
        assert live_a.sync_ingest() == 0

        # a sibling process: same base corpus, fresh database copy
        sibling_db, _ = _split_corpus(n_held=2, seed=89)
        live_b = LiveReformulator(
            sibling_db, ReformulatorConfig(), relations=root
        )
        assert live_b.ingest_epoch == 0
        assert live_b.sync_ingest() == 1
        assert live_b.ingest_epoch == 1
        assert live_b.sync_ingest() == 0  # idempotent at the tip

        keywords = self._probe_keywords(delta_rows)
        got_a = [
            scored_to_dict(s) for s in live_a.reformulate(keywords, k=5)
        ]
        got_b = [
            scored_to_dict(s) for s in live_b.reformulate(keywords, k=5)
        ]
        assert got_a == got_b

    def test_ingest_requires_relations(self, toy_db):
        from repro.live import LiveReformulator

        live = LiveReformulator(toy_db)
        with pytest.raises(ReproError, match="relation store"):
            live.ingest([{"table": "papers", "row": {"pid": 99}}])

    def test_sync_ingest_noop_without_relations_or_layers(
        self, toy_db, tmp_path
    ):
        from repro.live import LiveReformulator

        assert LiveReformulator(toy_db).sync_ingest() == 0


def test_shard_of_is_stable():
    assert shard_of("papers\x1ftitle\x1fquery", 8) == shard_of(
        "papers\x1ftitle\x1fquery", 8
    )
