"""Unit tests for repro.core.enumeration."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateState, StateKind
from repro.core.enumeration import RankBasedReformulator, brute_force_topk
from repro.errors import ReformulationError

from tests.strategies import hmms
from tests.test_core_hmm import build_tiny


def sim_state(node_id, text, sim):
    return CandidateState(StateKind.SIMILAR, node_id, text, sim)


class TestBruteForce:
    def test_enumerates_whole_space(self):
        hmm = build_tiny()
        results = brute_force_topk(hmm, 100)
        assert len(results) == 4

    def test_guard_on_large_space(self):
        hmm = build_tiny()
        with pytest.raises(ReformulationError):
            brute_force_topk(hmm, 1, max_space=2)

    def test_k_validation(self):
        with pytest.raises(ReformulationError):
            brute_force_topk(build_tiny(), 0)

    @settings(max_examples=30, deadline=None)
    @given(hmms())
    def test_results_are_true_maxima(self, hmm):
        top = brute_force_topk(hmm, 3)
        all_scores = sorted(
            (
                hmm.path_score(p)
                for p in itertools.product(
                    *[range(hmm.n_states(i)) for i in range(hmm.length)]
                )
            ),
            reverse=True,
        )
        for query, expected in zip(top, all_scores):
            assert query.score == pytest.approx(expected, abs=1e-12)


class TestRankBased:
    def make_states(self):
        return [
            [sim_state(0, "a0", 0.9), sim_state(1, "a1", 0.5),
             sim_state(2, "a2", 0.1)],
            [sim_state(3, "b0", 0.8), sim_state(4, "b1", 0.3)],
        ]

    def test_top1_is_best_product(self):
        ranker = RankBasedReformulator(self.make_states())
        top = ranker.topk(1)[0]
        assert top.terms == ("a0", "b0")
        assert top.score == pytest.approx(0.9 * 0.8)

    def test_topk_order(self):
        ranker = RankBasedReformulator(self.make_states())
        results = ranker.topk(6)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
        assert len(results) == 6  # entire 3x2 space

    def test_topk_matches_exhaustive(self):
        states = self.make_states()
        ranker = RankBasedReformulator(states)
        exhaustive = sorted(
            (
                states[0][i].sim * states[1][j].sim
                for i in range(3)
                for j in range(2)
            ),
            reverse=True,
        )
        ours = [r.score for r in ranker.topk(6)]
        assert ours == pytest.approx(exhaustive)

    def test_k_larger_than_space(self):
        ranker = RankBasedReformulator(self.make_states())
        assert len(ranker.topk(100)) == 6

    def test_no_duplicates(self):
        ranker = RankBasedReformulator(self.make_states())
        paths = [r.state_path for r in ranker.topk(6)]
        assert len(set(paths)) == 6

    def test_unsorted_input_handled(self):
        states = [
            [sim_state(0, "low", 0.1), sim_state(1, "high", 0.9)],
        ]
        ranker = RankBasedReformulator(states)
        assert ranker.topk(1)[0].terms == ("high",)

    def test_empty_states_rejected(self):
        with pytest.raises(ReformulationError):
            RankBasedReformulator([[]])

    def test_k_validation(self):
        with pytest.raises(ReformulationError):
            RankBasedReformulator(self.make_states()).topk(0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(0.01, 1.0, allow_nan=False), min_size=1, max_size=4
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_property_matches_exhaustive(self, sim_lists):
        states = [
            [
                sim_state(i * 10 + j, f"t{i}_{j}", s)
                for j, s in enumerate(position)
            ]
            for i, position in enumerate(sim_lists)
        ]
        ranker = RankBasedReformulator(states)
        k = 5
        ours = [r.score for r in ranker.topk(k)]
        exhaustive = sorted(
            (
                __import__("math").prod(combo)
                for combo in itertools.product(*sim_lists)
            ),
            reverse=True,
        )[:k]
        assert ours == pytest.approx(exhaustive)
