"""Unit tests for repro.data.sessions."""

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.data.sessions import SessionSimulator
from repro.data.workloads import WorkloadGenerator
from repro.errors import ReproError
from repro.eval.judge import JudgePanel


@pytest.fixture(scope="module")
def pieces(small_corpus, small_graph):
    reformulator = Reformulator(
        small_graph, ReformulatorConfig(n_candidates=8)
    )
    judges = JudgePanel(small_corpus.ground_truth)  # no cohesion for speed
    workloads = WorkloadGenerator(small_corpus, seed=5)
    return reformulator, judges, workloads


class TestValidation:
    def test_probability_bounds(self, pieces):
        reformulator, judges, _ = pieces
        with pytest.raises(ReproError):
            SessionSimulator(reformulator, judges, accept_if_relevant=1.5)
        with pytest.raises(ReproError):
            SessionSimulator(reformulator, judges, accept_if_irrelevant=-0.1)

    def test_inspect_top(self, pieces):
        reformulator, judges, _ = pieces
        with pytest.raises(ReproError):
            SessionSimulator(reformulator, judges, inspect_top=0)


class TestSimulation:
    def test_log_size(self, pieces):
        reformulator, judges, workloads = pieces
        simulator = SessionSimulator(
            reformulator, judges, inspect_top=3, seed=1
        )
        log = simulator.run(workloads.mixed_queries(4))
        assert 0 < len(log) <= 4 * 3

    def test_deterministic(self, pieces):
        reformulator, judges, workloads = pieces
        queries = workloads.mixed_queries(4)
        log_a = SessionSimulator(reformulator, judges, seed=7).run(queries)
        log_b = SessionSimulator(reformulator, judges, seed=7).run(queries)
        assert [i.accepted for i in log_a.interactions] == [
            i.accepted for i in log_b.interactions
        ]

    def test_seed_changes_behaviour(self, pieces):
        reformulator, judges, workloads = pieces
        queries = workloads.mixed_queries(6)
        log_a = SessionSimulator(reformulator, judges, seed=7).run(queries)
        log_b = SessionSimulator(reformulator, judges, seed=8).run(queries)
        assert [i.accepted for i in log_a.interactions] != [
            i.accepted for i in log_b.interactions
        ]

    def test_relevant_accepted_more_often(self, pieces):
        """With enough interactions, the click model's bias shows."""
        reformulator, judges, workloads = pieces
        simulator = SessionSimulator(
            reformulator, judges,
            accept_if_relevant=0.9, accept_if_irrelevant=0.0,
            inspect_top=5, seed=2,
        )
        log = simulator.run(workloads.mixed_queries(8))
        for interaction in log.accepted:
            assert interaction.relevant  # irrelevant never accepted at p=0

    def test_acceptance_rate(self, pieces):
        reformulator, judges, workloads = pieces
        all_accept = SessionSimulator(
            reformulator, judges,
            accept_if_relevant=1.0, accept_if_irrelevant=1.0,
            seed=3,
        )
        log = all_accept.run(workloads.mixed_queries(3))
        assert log.acceptance_rate == 1.0

    def test_empty_workload(self, pieces):
        reformulator, judges, _ = pieces
        log = SessionSimulator(reformulator, judges).run([])
        assert len(log) == 0
        assert log.acceptance_rate == 0.0
