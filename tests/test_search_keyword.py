"""Unit tests for repro.search.keyword on the toy corpus.

Toy layout reminder: ann wrote p0+p1 at vldb; bob wrote p2, eve wrote p3,
both at icdm.  The vldb and icdm components are NOT connected to each
other (no shared authors or venues).
"""

import pytest

from repro.errors import ReproError
from repro.search.keyword import KeywordSearchEngine


class TestSingleKeyword:
    def test_each_match_is_a_result(self, toy_search):
        results = toy_search.search(["pattern"])
        assert results.size == 2
        assert {r.root for r in results} == {("papers", 2), ("papers", 3)}

    def test_single_results_are_singletons(self, toy_search):
        for result in toy_search.search(["pattern"]):
            assert result.size == 1
            assert result.edges == frozenset()

    def test_author_name_matches_author_tuple(self, toy_search):
        results = toy_search.search(["ann"])
        assert results.size == 1
        assert results[0].root == ("authors", 0)

    def test_no_match(self, toy_search):
        assert toy_search.search(["zzz"]).size == 0

    def test_empty_query(self, toy_search):
        assert toy_search.search([]).size == 0

    def test_blank_keywords_stripped(self, toy_search):
        assert toy_search.search(["  ", "pattern"]).size == 2


class TestMultiKeyword:
    def test_same_title_pair(self, toy_search):
        results = toy_search.search(["probabilistic", "query"])
        assert results.size >= 1
        best = min(results, key=lambda r: r.size)
        assert best.size == 1
        assert best.root == ("papers", 0)

    def test_any_keyword_unmatched_gives_empty(self, toy_search):
        assert toy_search.search(["probabilistic", "zzz"]).size == 0

    def test_author_and_term_joined_through_writes(self, toy_search):
        results = toy_search.search(["ann", "uncertain"])
        assert results.size >= 1
        nodes = set().union(*(r.nodes for r in results))
        assert ("authors", 0) in nodes
        assert ("papers", 1) in nodes

    def test_venue_mates_joined_through_conference(self, toy_search):
        results = toy_search.search(["probabilistic", "uncertain"])
        assert results.size >= 1
        # the join must pass through a shared connector (vldb or ann)
        connectors = set()
        for r in results:
            connectors |= {
                ref for ref in r.nodes
                if ref[0] in ("conferences", "authors", "writes")
            }
        assert connectors

    def test_cross_component_query_empty(self, toy_search):
        """ann's component never joins bob's."""
        assert toy_search.search(["ann", "bob"]).size == 0

    def test_trees_are_connected(self, toy_db, toy_search):
        from repro.storage.tuplegraph import TupleGraph

        tg = TupleGraph(toy_db)
        for result in toy_search.search(["probabilistic", "uncertain"]):
            nodes = set(result.nodes)
            seen = {next(iter(nodes))}
            frontier = list(seen)
            while frontier:
                node = frontier.pop()
                for nbr in tg.neighbors(node):
                    if nbr in nodes and nbr not in seen:
                        seen.add(nbr)
                        frontier.append(nbr)
            assert seen == nodes

    def test_matches_cover_all_keywords(self, toy_search):
        for result in toy_search.search(["probabilistic", "pattern"]):
            assert {kw for kw, _ref in result.matches} == {
                "probabilistic", "pattern",
            }

    def test_three_keywords(self, toy_search):
        results = toy_search.search(["frequent", "pattern", "mining"])
        assert results.size >= 1
        assert min(r.size for r in results) == 1


class TestLimits:
    def test_max_results_truncates(self, toy_tuple_graph, toy_index):
        engine = KeywordSearchEngine(
            toy_tuple_graph, toy_index, max_results=1
        )
        results = engine.search(["pattern"])
        assert results.size == 1
        assert results.truncated

    def test_max_depth_zero_requires_direct_overlap(
        self, toy_tuple_graph, toy_index
    ):
        engine = KeywordSearchEngine(toy_tuple_graph, toy_index, max_depth=0)
        assert engine.search(["probabilistic", "query"]).size >= 1
        assert engine.search(["probabilistic", "uncertain"]).size == 0

    def test_validation(self, toy_tuple_graph, toy_index):
        with pytest.raises(ReproError):
            KeywordSearchEngine(toy_tuple_graph, toy_index, max_depth=-1)
        with pytest.raises(ReproError):
            KeywordSearchEngine(toy_tuple_graph, toy_index, max_results=0)


class TestConvenience:
    def test_result_size(self, toy_search):
        assert toy_search.result_size(["pattern"]) == 2

    def test_result_size_cached(self, toy_search):
        first = toy_search.result_size(["pattern", "mining"])
        second = toy_search.result_size(["pattern", "mining"])
        assert first == second

    def test_is_cohesive(self, toy_search):
        assert toy_search.is_cohesive(["probabilistic", "uncertain"])
        assert not toy_search.is_cohesive(["ann", "bob"])

    def test_results_deduplicated(self, toy_search):
        results = toy_search.search(["probabilistic", "pattern"])
        signatures = [r.signature() for r in results]
        assert len(signatures) == len(set(signatures))
