"""Integration tests: every experiment driver runs and produces the
paper's qualitative shapes at small scale.

These are the cheapest end-to-end guarantees that the benchmark harness
regenerates meaningful tables/figures; the full-scale runs live in
``benchmarks/``.
"""

import pytest

from repro.experiments import build_context
from repro.experiments import (
    ablations,
    fig5_precision,
    fig7_alg_comparison,
    fig8_stage_breakdown,
    fig9_topk_scaling,
    fig10_candidate_scaling,
    table1_close_terms,
    table2_similar_terms,
    table3_result_quality,
)


@pytest.fixture(scope="module")
def context():
    return build_context(scale="small", seed=7)


class TestTable1:
    def test_close_terms_report(self, context):
        report = table1_close_terms.run(context, top_n=5)
        assert report.target == "probabilistic"
        assert len(report.close_terms) == 5
        scores = [s for _t, s in report.close_terms]
        assert scores == sorted(scores, reverse=True)
        assert all(s > 0 for s in scores)

    def test_close_conferences_present(self, context):
        report = table1_close_terms.run(context, top_n=5)
        assert report.close_conferences
        assert report.joint_result_counts

    def test_close_terms_topically_coherent(self, context):
        """Most close terms share (or relate to) the target's topic."""
        report = table1_close_terms.run(context, top_n=5)
        truth = context.corpus.ground_truth
        coherent = sum(
            truth.terms_relevant("probabilistic", term)
            or not truth.topics_of_term(term)  # filler words allowed
            for term, _s in report.close_terms
        )
        assert coherent >= 3


class TestTable2:
    def test_walk_recovers_synonyms_cooccurrence_cannot(self, context):
        report = table2_similar_terms.run(context, target="xml", top_n=20)
        assert report.recovered_synonyms  # e.g. tree / semistructured
        coo_texts = {t for t, _s in report.cooccurrence_terms}
        for synonym in report.recovered_synonyms:
            assert synonym not in coo_texts

    def test_author_case_finds_community(self, context):
        report = table2_similar_terms.run_author_case(context, top_n=5)
        assert report.contextual_terms
        assert report.cooccurrence_terms == []  # names never co-occur


class TestFig5:
    def test_tat_wins_at_10(self, context):
        report = fig5_precision.run(context, n_queries=10)
        tat = report.curves["tat"][10]
        assert tat >= report.curves["cooccurrence"][10]
        assert tat >= report.curves["rank"][10]

    def test_curves_are_probabilities(self, context):
        report = fig5_precision.run(context, n_queries=6)
        for curve in report.curves.values():
            for value in curve.values():
                assert 0.0 <= value <= 1.0


class TestFig7:
    def test_alg3_beats_alg2_on_long_queries(self, context):
        report = fig7_alg_comparison.run(
            context, n_queries=24, max_len=6, k=10
        )
        assert report.speedup_at(6) > 1.0

    def test_all_lengths_measured(self, context):
        report = fig7_alg_comparison.run(context, n_queries=12, max_len=4)
        assert set(report.alg2_by_length) == {1, 2, 3, 4}


class TestFig8:
    def test_stage_breakdown_positive(self, context):
        report = fig8_stage_breakdown.run(context, n_queries=12, max_len=4)
        for length in report.viterbi_by_length:
            assert report.total_mean(length) > 0


class TestFig9:
    def test_astar_stage_grows_with_k(self, context):
        report = fig9_topk_scaling.run(
            context, ks=(1, 30), query_length=4, n_queries=6
        )
        assert report.astar_by_k[30].mean > report.astar_by_k[1].mean

    def test_viterbi_stage_flatish_in_k(self, context):
        report = fig9_topk_scaling.run(
            context, ks=(1, 30), query_length=4, n_queries=6
        )
        # the Viterbi table does not depend on k; allow generous noise
        assert report.viterbi_by_k[30].mean < report.viterbi_by_k[1].mean * 5


class TestFig10:
    def test_reports_every_size(self, context):
        report = fig10_candidate_scaling.run(
            context, sizes=(5, 10), query_length=3, n_queries=4
        )
        assert set(report.total_by_size) == {5, 10}


class TestTable3:
    def test_tat_beats_rank_on_both_metrics(self, context):
        table = table3_result_quality.run(context, n_queries=10, k=8)
        tat = table.reports["tat"]
        rank = table.reports["rank"]
        assert tat.result_size > rank.result_size
        assert tat.query_distance > rank.query_distance

    def test_all_methods_reported(self, context):
        table = table3_result_quality.run(context, n_queries=6, k=5)
        assert set(table.reports) == {"tat", "rank", "cooccurrence"}


class TestAblations:
    def test_preference_ablation(self, context):
        report = ablations.run_preference_ablation(
            context, top_n=20, max_targets=20
        )
        assert report.walk_synonym_recall > report.cooccurrence_synonym_recall
        assert 0.0 <= report.variant_overlap <= 1.0

    def test_smoothing_sweep_runs(self, context):
        report = ablations.run_smoothing_sweep(
            context, lambdas=(0.8, 1.0), n_queries=4, k=5
        )
        assert set(report.precision_by_lambda) == {0.8, 1.0}

    def test_pruning_sweep_monotone_trend(self, context):
        report = ablations.run_pruning_sweep(
            context, beams=(50, 4000), n_targets=8
        )
        assert report.overlap_by_beam[4000] >= report.overlap_by_beam[50]
