"""Unit tests for repro.graph.viz."""

import pytest

from repro.errors import GraphError
from repro.graph.viz import ego_network, render_text, to_dot


@pytest.fixture(scope="module")
def center(toy_graph):
    return toy_graph.resolve_text_one("probabilistic")


class TestEgoNetwork:
    def test_center_at_distance_zero(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=2)
        assert ego.distances[center] == 0

    def test_radius_respected(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=1)
        assert max(ego.distances.values()) <= 1

    def test_radius_one_is_containing_papers(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=1)
        ring1 = {
            toy_graph.node(n).payload
            for n, d in ego.distances.items()
            if d == 1
        }
        assert ring1 == {("papers", 0), ("papers", 3)}

    def test_max_nodes_cap(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=3, max_nodes=5)
        assert len(ego) <= 5

    def test_edges_within_kept_nodes(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=2)
        kept = set(ego.distances)
        for a, b in ego.edges:
            assert a in kept and b in kept
            assert a < b  # canonical orientation, no duplicates

    def test_validation(self, toy_graph, center):
        with pytest.raises(GraphError):
            ego_network(toy_graph, center, radius=0)
        with pytest.raises(GraphError):
            ego_network(toy_graph, center, max_nodes=1)


class TestRenderers:
    def test_dot_structure(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=2)
        dot = to_dot(toy_graph, ego)
        assert dot.startswith("graph tat {")
        assert dot.rstrip().endswith("}")
        assert f"n{center} " in dot
        assert "peripheries=2" in dot  # the doubled center
        assert "shape=box" in dot      # term nodes
        assert "shape=ellipse" in dot  # tuple nodes
        assert " -- " in dot

    def test_dot_node_count(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=1)
        dot = to_dot(toy_graph, ego)
        declared = [l for l in dot.splitlines() if "[label=" in l]
        assert len(declared) == len(ego)

    def test_text_rendering(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=2)
        text = render_text(toy_graph, ego)
        assert "*probabilistic" in text
        assert "papers#0" in text

    def test_text_indentation_by_ring(self, toy_graph, center):
        ego = ego_network(toy_graph, center, radius=2)
        lines = render_text(toy_graph, ego).splitlines()
        center_line = next(l for l in lines if l.startswith("*"))
        assert not center_line.startswith(" ")
        ring2 = [l for l in lines if l.startswith("    ")]
        assert ring2  # something at distance 2
