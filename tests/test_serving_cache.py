"""Tests for the online serving fast path (repro.serving).

Three layers under test:

* :class:`PlanCache` — per-term / per-pair memoization assembling HMMs
  through the same float operations as the uncached builder, so cached
  and uncached suggestion lists must be **bit-identical**;
* :class:`ResultCache` — the query-level LRU with version-aware
  invalidation;
* the wiring — ``Reformulator.reformulate_many``, the log decode lanes,
  and ``LiveReformulator``'s result LRU + staleness bypass counter.
"""

import pytest

from repro import obs
from repro.core.hmm import IndexFrequency
from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError
from repro.live import LiveReformulator
from repro.serving import PlanCache, ResultCache

from tests.conftest import build_toy_database


QUERIES = [
    ["probabilistic", "query"],
    ["pattern", "mining"],
    ["probabilistic", "pattern", "discovery"],
    ["uncertain", "data"],
]


def _pair(graph, plan_cache: bool, **knobs):
    """(uncached, cached) reformulators with identical knobs."""
    uncached = Reformulator(
        graph, ReformulatorConfig(enable_plan_cache=False, **knobs)
    )
    cached = Reformulator(
        graph, ReformulatorConfig(enable_plan_cache=plan_cache, **knobs)
    )
    return uncached, cached


# --------------------------------------------------------------------- #
# bit-identical plan-cache serving
# --------------------------------------------------------------------- #

class TestCachedEqualsUncached:
    KNOB_COMBOS = [
        dict(n_candidates=6),
        dict(n_candidates=3),
        dict(n_candidates=6, include_void=True),
        dict(n_candidates=6, include_original=False),
        dict(n_candidates=4, include_void=True, include_original=False),
        dict(n_candidates=6, smoothing_lambda=0.5),
        dict(n_candidates=6, smoothing_lambda=1.0),
    ]

    @pytest.mark.parametrize("knobs", KNOB_COMBOS)
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_bit_identical_across_knobs(self, toy_graph, knobs, k):
        uncached, cached = _pair(toy_graph, True, **knobs)
        for query in QUERIES:
            assert cached.reformulate(query, k=k) == uncached.reformulate(
                query, k=k
            )

    def test_warm_calls_stay_identical(self, toy_graph):
        """Second and third servings (all plan blocks cached) still match."""
        uncached, cached = _pair(toy_graph, True, n_candidates=6)
        reference = [uncached.reformulate(q, k=5) for q in QUERIES]
        for _round in range(3):
            assert [cached.reformulate(q, k=5) for q in QUERIES] == reference
        stats = cached.plan_cache.stats()
        assert stats.term_hits > 0 and stats.pair_hits > 0

    def test_hmm_identical_matrices(self, toy_graph):
        import numpy as np

        uncached, cached = _pair(toy_graph, True, n_candidates=6)
        query = ["probabilistic", "pattern", "mining"]
        a = uncached.build_hmm(query)
        b = cached.build_hmm(query)
        assert np.array_equal(a.pi, b.pi)
        for x, y in zip(a.emissions, b.emissions):
            assert np.array_equal(x, y)
        for x, y in zip(a.transitions, b.transitions):
            assert np.array_equal(x, y)

    def test_all_algorithms_identical(self, toy_graph):
        uncached, cached = _pair(toy_graph, True, n_candidates=6)
        for algorithm in ("astar", "viterbi_topk", "astar_log",
                          "viterbi_topk_log"):
            for query in QUERIES:
                assert cached.reformulate(
                    query, k=5, algorithm=algorithm
                ) == uncached.reformulate(query, k=5, algorithm=algorithm)


class TestLogLanes:
    def test_log_equals_linear(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        for query in QUERIES:
            astar = r.reformulate(query, k=5, algorithm="astar")
            assert r.reformulate(query, k=5, algorithm="astar_log") == astar
            vtopk = r.reformulate(query, k=5, algorithm="viterbi_topk")
            assert (
                r.reformulate(query, k=5, algorithm="viterbi_topk_log")
                == vtopk
            )

    def test_log_lane_on_uncached_hmm(self, toy_graph):
        """The lazy log matrices work without a plan cache seeding them."""
        from repro.core.viterbi import viterbi_top1, viterbi_top1_log

        r = Reformulator(
            toy_graph, ReformulatorConfig(
                enable_plan_cache=False, n_candidates=6
            )
        )
        hmm = r.build_hmm(["probabilistic", "query"])
        assert viterbi_top1_log(hmm) == viterbi_top1(hmm)


# --------------------------------------------------------------------- #
# PlanCache internals
# --------------------------------------------------------------------- #

class TestPlanCache:
    def _cache(self, reformulator, **kwargs):
        return PlanCache(
            candidates=reformulator.candidates,
            closeness=reformulator.closeness,
            frequency=reformulator.frequency,
            smoothing_lambda=reformulator.config.smoothing_lambda,
            **kwargs,
        )

    def test_hit_miss_counting(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        cache = self._cache(r)
        cache.term_plan("probabilistic")
        cache.term_plan("probabilistic")
        stats = cache.stats()
        assert (stats.term_misses, stats.term_hits) == (1, 1)
        # pair_plan pulls both term plans internally, so only the pair
        # counters are asserted from here on
        cache.pair_plan("probabilistic", "query")
        cache.pair_plan("probabilistic", "query")
        stats = cache.stats()
        assert (stats.pair_misses, stats.pair_hits) == (1, 1)

    def test_lru_eviction(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        cache = self._cache(r, max_terms=2)
        cache.term_plan("probabilistic")
        cache.term_plan("query")
        cache.term_plan("probabilistic")   # refresh LRU position
        cache.term_plan("pattern")         # evicts "query"
        stats = cache.stats()
        assert stats.term_evictions == 1
        assert stats.terms_resident == 2
        before = cache.stats().term_misses
        cache.term_plan("probabilistic")   # survived (was refreshed)
        assert cache.stats().term_misses == before
        cache.term_plan("query")           # was evicted -> recompute
        assert cache.stats().term_misses == before + 1

    def test_bump_version_clears(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        cache = self._cache(r)
        cache.term_plan("probabilistic")
        cache.pair_plan("probabilistic", "query")
        cache.bump_version()
        stats = cache.stats()
        assert stats.terms_resident == 0 and stats.pairs_resident == 0
        before = cache.stats().term_misses
        cache.term_plan("probabilistic")  # version is part of the key
        assert cache.stats().term_misses == before + 1

    def test_warm_builds_distinct_terms_once(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        cache = self._cache(r)
        n = cache.warm([("probabilistic", "query"),
                        ("query", "probabilistic"),
                        ("probabilistic", "query")])
        assert n == 2
        stats = cache.stats()
        assert stats.term_misses == 2
        assert stats.terms_resident == 2
        assert stats.pairs_resident == 2  # both orders of the pair

    def test_plans_are_readonly(self, toy_graph):
        import numpy as np

        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        cache = self._cache(r)
        plan = cache.term_plan("probabilistic")
        with pytest.raises(ValueError):
            plan.freqs[0] = 1.0
        pair = cache.pair_plan("probabilistic", "query")
        with pytest.raises(ValueError):
            pair.smoothed[0, 0] = 1.0
        assert isinstance(plan.sims, np.ndarray)


# --------------------------------------------------------------------- #
# ResultCache
# --------------------------------------------------------------------- #

def _fake_results(tag: str):
    return [ScoredQuery(terms=(tag,), score=0.5, state_path=(0,))]


class TestResultCache:
    def test_roundtrip_and_copy_isolation(self):
        cache = ResultCache(max_entries=4)
        key = ResultCache.key(["a", "b"], 5, "astar")
        assert cache.get(key, version=1) is None
        cache.put(key, 1, _fake_results("x"))
        got = cache.get(key, version=1)
        assert got == _fake_results("x")
        got.append("junk")  # mutating the returned list is safe
        assert cache.get(key, version=1) == _fake_results("x")

    def test_version_mismatch_is_miss_and_evicts(self):
        cache = ResultCache(max_entries=4)
        key = ResultCache.key(["a"], 3, "astar")
        cache.put(key, 1, _fake_results("x"))
        assert cache.get(key, version=2) is None
        assert key not in cache
        stats = cache.stats()
        assert stats.evictions_stale == 1 and stats.misses == 1

    def test_capacity_eviction_is_lru(self):
        cache = ResultCache(max_entries=2)
        k1, k2, k3 = (ResultCache.key([c], 1, "astar") for c in "abc")
        cache.put(k1, 1, _fake_results("1"))
        cache.put(k2, 1, _fake_results("2"))
        cache.get(k1, version=1)           # k1 most recent
        cache.put(k3, 1, _fake_results("3"))
        assert k1 in cache and k3 in cache and k2 not in cache
        assert cache.stats().evictions_capacity == 1

    def test_evict_stale_bulk(self):
        cache = ResultCache(max_entries=8)
        for i in range(3):
            cache.put(ResultCache.key([str(i)], 1, "astar"), 1,
                      _fake_results(str(i)))
        cache.put(ResultCache.key(["new"], 1, "astar"), 2,
                  _fake_results("new"))
        assert cache.evict_stale(version=2) == 3
        assert len(cache) == 1
        assert cache.stats().evictions_stale == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ReformulationError):
            ResultCache(max_entries=0)


# --------------------------------------------------------------------- #
# batched API
# --------------------------------------------------------------------- #

class TestReformulateMany:
    def test_matches_sequential_with_duplicates(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        log = [QUERIES[0], QUERIES[1], QUERIES[0], QUERIES[2], QUERIES[1]]
        expected = [r.reformulate(q, k=4) for q in log]
        assert r.reformulate_many(log, k=4, workers=1) == expected
        assert r.reformulate_many(log, k=4, workers=4) == expected

    def test_duplicate_results_are_independent_lists(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        out = r.reformulate_many([QUERIES[0], QUERIES[0]], k=3)
        assert out[0] == out[1] and out[0] is not out[1]

    def test_sequential_without_plan_cache(self, toy_graph):
        r = Reformulator(
            toy_graph,
            ReformulatorConfig(enable_plan_cache=False, n_candidates=6),
        )
        ref = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        assert r.reformulate_many(QUERIES, k=3, workers=4) == [
            ref.reformulate(q, k=3) for q in QUERIES
        ]


# --------------------------------------------------------------------- #
# LiveReformulator wiring
# --------------------------------------------------------------------- #

@pytest.fixture()
def live():
    return LiveReformulator(
        build_toy_database(), ReformulatorConfig(n_candidates=6)
    )


class TestLiveServing:
    def test_repeat_query_hits_result_cache(self, live):
        first = live.reformulate(["probabilistic", "query"], k=3)
        hits_before = live.result_cache.stats().hits
        second = live.reformulate(["probabilistic", "query"], k=3)
        assert second == first
        assert live.result_cache.stats().hits == hits_before + 1

    def test_insert_evicts_on_rebuild(self, live):
        live.reformulate(["probabilistic", "query"], k=3)
        live.reformulate(["pattern", "mining"], k=3)
        assert len(live.result_cache) == 2
        live.insert("papers", {
            "pid": 70, "title": "probabilistic query streams",
            "cid": 0, "year": 2013,
        })
        live.reformulate(["probabilistic", "query"], k=3)  # rebuilds
        stats = live.result_cache.stats()
        assert stats.evictions_stale == 2
        # only the re-served query is resident, at the new version
        assert len(live.result_cache) == 1

    def test_stale_query_bypasses_cache(self, live):
        live.reformulate(["probabilistic", "query"], k=3)
        assert live.cache_bypasses == 1  # the cold first build counts
        live.invalidate()
        live.reformulate(["probabilistic", "query"], k=3)
        assert live.cache_bypasses == 2
        live.reformulate(["probabilistic", "query"], k=3)  # fresh -> no bump
        assert live.cache_bypasses == 2

    def test_bypass_counter_metric(self, live):
        obs.reset()
        with obs.enabled():
            live.reformulate(["probabilistic", "query"], k=3)
            live.invalidate()
            live.reformulate(["probabilistic", "query"], k=3)
            metric = obs.registry().get(
                "repro_live_result_cache_bypass_total"
            )
            assert metric is not None and metric.value == 2
        obs.reset()

    def test_result_cache_disabled(self):
        live = LiveReformulator(
            build_toy_database(),
            ReformulatorConfig(n_candidates=6, result_cache_size=0),
        )
        assert live.result_cache is None
        first = live.reformulate(["probabilistic", "query"], k=3)
        assert live.reformulate(["probabilistic", "query"], k=3) == first

    def test_reformulate_many_delegates(self, live):
        batched = live.reformulate_many(QUERIES, k=3, workers=2)
        fresh = LiveReformulator(
            build_toy_database(), ReformulatorConfig(n_candidates=6)
        )
        assert batched == [fresh.reformulate(q, k=3) for q in QUERIES]

    def test_plan_cache_counters_exported(self, live):
        """Cache counters reach the obs registry (the `repro stats` feed)."""
        obs.reset()
        with obs.enabled():
            live.reformulate(["probabilistic", "query"], k=3)
            live.reformulate(["probabilistic", "pattern"], k=3)
            registry = obs.registry()
            hits = registry.get(
                "repro_plan_cache_hits_total", layer="term"
            )
            assert hits is not None and hits.value > 0
            assert registry.get("repro_result_cache_misses_total") is not None
        obs.reset()


# --------------------------------------------------------------------- #
# satellites
# --------------------------------------------------------------------- #

class TestIndexFrequencyMemo:
    def test_memoized_value_stable(self, toy_graph):
        freq = IndexFrequency(toy_graph)
        node = toy_graph.resolve_text_one("probabilistic")
        first = freq.frequency(node)
        assert node in freq._cache
        freq._cache[node] = first  # cached path returns the stored value
        assert freq.frequency(node) == first
        assert first > 0

    def test_memo_matches_fresh_instance(self, toy_graph):
        warm = IndexFrequency(toy_graph)
        for text in ("probabilistic", "pattern", "query"):
            node = toy_graph.resolve_text_one(text)
            warm.frequency(node)
            assert warm.frequency(node) == IndexFrequency(
                toy_graph
            ).frequency(node)


class TestCandidateBuildDedupe:
    def test_repeated_keyword_shares_list(self, toy_graph):
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))
        lists = r.candidates.build(["pattern", "mining", "pattern"])
        assert lists[0] is lists[2]
        assert lists[0] is not lists[1]
