"""The lane subsystem: bit-identity, relaxation, schema binding, routing.

The load-bearing contract is the first class: the ``hmm`` lane is a
*pure wrapper* over :class:`~repro.core.reformulator.Reformulator`, so
its suggestions must be bit-identical to the bare pipeline for every
decode algorithm — the lane adds measurement, never behavior.

The relaxation tests run on a corpus **engineered to have no cohesive
substitution**: two disconnected topic islands (disjoint vocabularies,
conferences and authors, no cross-island foreign keys), so the raw
closeness between any cross-island term pair is exactly 0 and every
cross-island query trips the cohesion threshold.
"""

import pytest

from repro.core.candidates import StateKind
from repro.core.enumeration import RankBasedReformulator
from repro.core.reformulator import ALGORITHMS, Reformulator, ReformulatorConfig
from repro.errors import ReformulationError, ReproError
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.lanes import (
    EnumerationLane,
    HmmLane,
    LaneRouter,
    RelaxationLane,
    RouterConfig,
    SchemaLane,
    UnknownLaneError,
    build_router,
    derive_field_vocabulary,
    query_cohesion,
)
from repro.storage.database import Database

from tests.conftest import build_toy_database, toy_schema

QUERIES = [
    ["probabilistic", "query"],
    ["uncertain", "data"],
    ["pattern", "mining"],
    ["probabilistic", "pattern", "mining"],
    ["probabilistic"],
]


def build_islands_database() -> Database:
    """Two topic islands with no connecting tuple path.

    Island A (vldb / ann): "skyline fusion ranking" and "skyline ranking
    methods".  Island B (icdm / bob): "crowdsourcing label quality" and
    "crowdsourcing quality control".  Vocabularies, venues and authors
    are disjoint, so the raw closeness across islands is exactly 0 —
    any cross-island query has no cohesive substitution at all.
    """
    database = Database(toy_schema())
    database.insert("conferences", {"cid": 0, "name": "vldb"})
    database.insert("conferences", {"cid": 1, "name": "icdm"})
    database.insert("authors", {"aid": 0, "name": "ann"})
    database.insert("authors", {"aid": 1, "name": "bob"})
    database.insert("papers", {
        "pid": 0, "title": "skyline fusion ranking", "cid": 0, "year": 2010,
    })
    database.insert("papers", {
        "pid": 1, "title": "skyline ranking methods", "cid": 0, "year": 2011,
    })
    database.insert("papers", {
        "pid": 2, "title": "crowdsourcing label quality", "cid": 1,
        "year": 2009,
    })
    database.insert("papers", {
        "pid": 3, "title": "crowdsourcing quality control", "cid": 1,
        "year": 2012,
    })
    database.insert("writes", {"wid": 0, "aid": 0, "pid": 0})
    database.insert("writes", {"wid": 1, "aid": 0, "pid": 1})
    database.insert("writes", {"wid": 2, "aid": 1, "pid": 2})
    database.insert("writes", {"wid": 3, "aid": 1, "pid": 3})
    return database


def make_pipeline(database: Database) -> Reformulator:
    graph = TATGraph(database, InvertedIndex(database).build())
    return Reformulator(graph, ReformulatorConfig(n_candidates=6))


@pytest.fixture(scope="module")
def pipeline() -> Reformulator:
    return make_pipeline(build_toy_database())


@pytest.fixture(scope="module")
def islands() -> Reformulator:
    return make_pipeline(build_islands_database())


class TestHmmLaneBitIdentity:
    """The hmm lane equals the bare pipeline, every algorithm, bit for bit."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("keywords", QUERIES, ids="-".join)
    def test_single_query(self, pipeline, keywords, algorithm):
        lane = HmmLane(pipeline)
        routed = lane.reformulate(keywords, k=5, algorithm=algorithm)
        bare = pipeline.reformulate(keywords, k=5, algorithm=algorithm)
        assert list(routed.suggestions) == bare

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batch(self, pipeline, algorithm):
        lane = HmmLane(pipeline)
        routed = lane.reformulate_batch(QUERIES, k=5, algorithm=algorithm)
        bare = pipeline.reformulate_many(
            [list(q) for q in QUERIES], k=5, algorithm=algorithm
        )
        assert [list(r.suggestions) for r in routed] == bare

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("keywords", QUERIES, ids="-".join)
    def test_through_router(self, pipeline, keywords, algorithm):
        router = build_router(pipeline)
        routed = router.route(keywords, k=5, algorithm=algorithm)
        assert routed.lane == "hmm" and routed.requested == "hmm"
        assert list(routed.suggestions) == pipeline.reformulate(
            keywords, k=5, algorithm=algorithm
        )

    def test_provenance_and_cohesion(self, pipeline):
        result = HmmLane(pipeline).reformulate(["pattern", "mining"], k=4)
        assert len(result.provenance) == len(result.suggestions) > 0
        assert all(
            p == {"lane": "hmm", "relaxed": False} for p in result.provenance
        )
        assert result.cohesion is not None and result.cohesion > 0.0
        assert result.relaxed is False


class TestEnumerationLane:
    """The rank-based baseline behind the lane interface."""

    def test_matches_rank_based_reformulator(self, pipeline):
        keywords = ["probabilistic", "pattern"]
        k = 5
        result = EnumerationLane(pipeline).reformulate(keywords, k=k)
        states = [
            pipeline.plan_cache.term_plan(kw).state_list for kw in keywords
        ] if pipeline.plan_cache is not None else (
            pipeline.candidates.build(keywords)
        )
        raw = RankBasedReformulator(states).topk(k + pipeline._slack(keywords))
        expected = pipeline._postprocess(keywords, raw, k)
        assert list(result.suggestions) == list(expected)

    def test_no_cohesion_so_never_falls_back(self, islands):
        """cohesion=None means the fallback chain must not trigger, even
        on a query with provably no cohesive substitution."""
        router = build_router(
            islands, RouterConfig(fallback_lane="relaxation")
        )
        result = router.route(
            ["skyline", "crowdsourcing"], k=5, lane="enumeration"
        )
        assert result.lane == "enumeration"
        assert result.cohesion is None
        assert result.fallback_from is None


class TestQueryCohesion:
    """The trigger metric for the relaxation fallback."""

    def test_single_keyword_is_trivially_cohesive(self, pipeline):
        best = pipeline.reformulate(["probabilistic"], k=1)[0]
        assert query_cohesion(pipeline, ["probabilistic"], best) == 1.0

    def test_no_suggestion_is_maximally_incohesive(self, pipeline):
        assert query_cohesion(pipeline, ["pattern", "mining"], None) == 0.0

    def test_unknown_term_scores_zero(self, pipeline):
        keywords = ["probabilistic", "zzghostzz"]
        best = pipeline.reformulate(keywords, k=1)[0]
        assert query_cohesion(pipeline, keywords, best) == 0.0

    def test_connected_terms_score_positive(self, pipeline):
        keywords = ["pattern", "mining"]
        best = pipeline.reformulate(keywords, k=1)[0]
        assert query_cohesion(pipeline, keywords, best) > 0.0

    def test_cross_island_terms_score_zero(self, islands):
        """No tuple path joins the islands: raw closeness is exactly 0."""
        keywords = ["skyline", "crowdsourcing"]
        best = islands.reformulate(keywords, k=1)[0]
        assert query_cohesion(islands, keywords, best) == 0.0


class TestRelaxationLane:
    """Wiese-style weakening when no cohesive substitution exists."""

    def test_cohesive_query_passes_through(self, pipeline):
        lane = RelaxationLane(pipeline)
        result = lane.reformulate(["pattern", "mining"], k=5)
        assert result.relaxed is False
        assert result.metadata.get("passthrough") == "hmm"
        base = HmmLane(pipeline).reformulate(["pattern", "mining"], k=5)
        assert result.suggestions == base.suggestions
        assert all(p["relaxed"] is False for p in result.provenance)

    def test_cross_island_query_is_relaxed(self, islands):
        result = RelaxationLane(islands).reformulate(
            ["skyline", "crowdsourcing"], k=5
        )
        assert result.relaxed is True
        assert len(result.suggestions) > 0
        for provenance in result.provenance:
            assert provenance["relaxed"] is True
            assert provenance["dropped"] or provenance["generalized"]

    def test_dropped_positions_stay_aligned(self, islands):
        """Dropped inputs survive as None terms / -1 path entries, so
        every suggestion stays positionally aligned with the query."""
        keywords = ["skyline", "crowdsourcing"]
        result = RelaxationLane(islands).reformulate(keywords, k=5)
        for scored, provenance in zip(result.suggestions, result.provenance):
            assert len(scored.terms) == len(keywords)
            dropped = provenance["dropped"]
            if not dropped:
                continue
            dropped_positions = {
                pos for pos, kw in enumerate(keywords) if kw in dropped
            }
            for pos in range(len(keywords)):
                if pos in dropped_positions:
                    assert scored.terms[pos] is None
                    assert scored.state_path[pos] == -1
                else:
                    assert scored.terms[pos] is not None
                    assert scored.state_path[pos] >= 0

    def test_unknown_term_is_dropped_first(self, pipeline):
        """An out-of-vocabulary term is the least informative: the idf
        weighting drops it before any known term."""
        result = RelaxationLane(pipeline).reformulate(
            ["pattern", "zzghostzz"], k=5
        )
        assert result.relaxed is True
        assert len(result.suggestions) > 0
        assert all(
            p["dropped"] == ["zzghostzz"]
            for p in result.provenance if p["dropped"]
        )

    def test_decode_cap_is_respected(self, islands):
        lane = RelaxationLane(islands, max_decodes=2)
        result = lane.reformulate(["skyline", "crowdsourcing"], k=10)
        # out_of_budget is checked before each variant; a drop round may
        # add the follow-up substitution decode, hence the +1 slack.
        assert result.metadata["decodes"] <= lane.max_decodes + 1

    def test_exhausted_budget_returns_empty(self, islands):
        result = RelaxationLane(islands).reformulate(
            ["skyline", "crowdsourcing"], k=5, budget=1e-12
        )
        assert result.suggestions == ()
        assert result.relaxed is False


class TestSchemaLane:
    """Schema keywords bind fields and constrain the candidate space."""

    @pytest.fixture(scope="class")
    def lane(self, pipeline):
        return SchemaLane(
            pipeline, derive_field_vocabulary(pipeline.graph.database)
        )

    def test_schema_token_binds_next_keyword(self, lane):
        reduced, bindings, tokens = lane.detect_bindings(
            ["author", "ann", "pattern"]
        )
        assert reduced == ["ann", "pattern"]
        assert bindings == {0: ("authors", "name")}
        assert tokens == ["author"]

    def test_trailing_schema_token_binds_nothing(self, lane):
        reduced, bindings, tokens = lane.detect_bindings(["pattern", "author"])
        assert reduced == ["pattern"]
        assert bindings == {}
        assert tokens == ["author"]

    def test_detection_is_case_insensitive(self, lane):
        _, bindings, tokens = lane.detect_bindings(["Author", "ann"])
        assert bindings == {0: ("authors", "name")}
        assert tokens == ["Author"]

    def test_all_schema_query_is_an_error(self, lane):
        with pytest.raises(ReformulationError):
            lane.reformulate(["author", "paper"], k=3)

    def test_no_schema_tokens_behaves_like_hmm(self, lane, pipeline):
        result = lane.reformulate(["pattern", "mining"], k=5)
        base = HmmLane(pipeline).reformulate(["pattern", "mining"], k=5)
        assert result.suggestions == base.suggestions
        assert result.metadata["bindings"] == {}

    def test_bound_decode_drops_schema_token(self, lane, pipeline):
        """The schema token is consumed, not decoded: suggestions match
        the reduced query (the constraint is vacuous here — every
        similar of "ann" is already an author name)."""
        result = lane.reformulate(["author", "ann", "pattern"], k=5)
        expected = pipeline.reformulate(["ann", "pattern"], k=5)
        assert list(result.suggestions) == expected
        assert result.metadata["decoded_query"] == ["ann", "pattern"]
        assert result.metadata["bindings"] == {"ann": ["authors", "name"]}
        assert result.metadata["schema_tokens"] == ["author"]

    def test_foreign_field_binding_pins_the_original(self, lane):
        """Binding "pattern" to conferences.name filters every SIMILAR
        candidate (all live in papers.title), so the bound position can
        only keep the word as typed (or delete it)."""
        result = lane.reformulate(["conference", "pattern", "mining"], k=6)
        assert len(result.suggestions) > 0
        for scored in result.suggestions:
            assert scored.terms[0] in ("pattern", None)

    def test_constrain_filters_similars_by_node_class(self, lane, pipeline):
        states = pipeline.candidates.build(["pattern"])[0]
        foreign = lane._constrain(states, ("conferences", "name"))
        assert all(s.kind is not StateKind.SIMILAR for s in foreign)
        assert any(s.kind is StateKind.ORIGINAL for s in foreign)
        native = lane._constrain(states, ("papers", "title"))
        assert native == list(states)
        assert lane._constrain(states, None) is states

    def test_derived_vocabulary_drops_ambiguous_keys(self, pipeline):
        vocabulary = derive_field_vocabulary(pipeline.graph.database)
        # "name" is claimed by authors and conferences: never guess.
        assert "name" not in vocabulary
        assert vocabulary["author"] == ("authors", "name")
        assert vocabulary["authors"] == ("authors", "name")
        assert vocabulary["title"] == ("papers", "title")
        # "writes" has no text fields, so it claims nothing.
        assert "writes" not in vocabulary


class TestRouterConfig:
    """Validation, lane resolution and the cache-tag scheme."""

    @pytest.mark.parametrize("bad", [
        {"lanes": ()},
        {"lanes": ("hmm", "warp")},
        {"lanes": ("hmm", "hmm")},
        {"default_lane": "schema", "lanes": ("hmm",)},
        {"fallback_lane": "relaxation", "lanes": ("hmm",)},
        {"cohesion_threshold": -1.0},
        {"max_relaxation_decodes": 0},
        {"climb_width": -1},
    ])
    def test_validate_rejects(self, bad):
        with pytest.raises(ReproError):
            RouterConfig(**bad).validate()

    def test_resolve_defaults_and_rejects(self):
        config = RouterConfig(lanes=("hmm", "relaxation"))
        assert config.resolve(None) == "hmm"
        assert config.resolve("relaxation") == "relaxation"
        with pytest.raises(UnknownLaneError):
            config.resolve("schema")

    def test_cache_tag_encodes_the_fallback_chain(self):
        plain = RouterConfig()
        assert plain.cache_tag("hmm") == "hmm"
        chained = RouterConfig(fallback_lane="relaxation")
        assert chained.cache_tag("hmm") == "hmm>relaxation@1e-09"
        # The fallback lane itself cannot be replaced by the chain.
        assert chained.cache_tag("relaxation") == "relaxation"


class TestLaneRouter:
    """Dispatch, fallback chaining and provenance stamping."""

    def test_unknown_lane_raises(self, pipeline):
        router = build_router(
            pipeline, RouterConfig(lanes=("hmm", "relaxation"))
        )
        with pytest.raises(UnknownLaneError):
            router.route(["pattern"], lane="schema")
        with pytest.raises(UnknownLaneError):
            router.route(["pattern"], lane="warp")

    def test_duplicate_registration_raises(self, pipeline):
        router = LaneRouter(RouterConfig(lanes=("hmm",)))
        router.register(HmmLane(pipeline))
        with pytest.raises(ReproError):
            router.register(HmmLane(pipeline))

    def test_registration_order_is_names_order(self, pipeline):
        router = build_router(pipeline)
        assert router.names == ("hmm", "enumeration", "relaxation", "schema")

    def test_fallback_chain_on_incohesive_query(self, islands):
        router = build_router(
            islands, RouterConfig(fallback_lane="relaxation")
        )
        result = router.route(["skyline", "crowdsourcing"], k=5, lane="hmm")
        assert result.lane == "relaxation"
        assert result.requested == "hmm"
        assert result.fallback_from == "hmm"
        assert result.relaxed is True
        assert len(result.suggestions) > 0

    def test_cohesive_query_does_not_fall_back(self, islands):
        router = build_router(
            islands, RouterConfig(fallback_lane="relaxation")
        )
        result = router.route(["skyline", "ranking"], k=5, lane="hmm")
        assert result.lane == "hmm"
        assert result.fallback_from is None

    def test_route_many_applies_fallback_per_entry(self, islands):
        router = build_router(
            islands, RouterConfig(fallback_lane="relaxation")
        )
        incohesive, cohesive = ["skyline", "crowdsourcing"], ["skyline", "ranking"]
        results = router.route_many([incohesive, cohesive], k=5, lane="hmm")
        assert [r.lane for r in results] == ["relaxation", "hmm"]
        assert [r.fallback_from for r in results] == ["hmm", None]
        assert results[1].suggestions == tuple(
            islands.reformulate(cohesive, k=5)
        )
