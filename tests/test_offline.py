"""Unit tests for repro.offline: precomputation and the relation store."""

import json

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.index.inverted import FieldTerm
from repro.offline import (
    OfflinePrecomputer,
    TermRelationStore,
    _parse_term_key,
    _term_key,
)

TITLE = ("papers", "title")


@pytest.fixture(scope="module")
def precomputer(toy_graph):
    return OfflinePrecomputer(
        toy_graph,
        closeness=ClosenessExtractor(toy_graph, beam_width=None),
        n_similar=8,
        closeness_top=30,
    )


@pytest.fixture(scope="module")
def store(precomputer):
    return precomputer.build_store()


class TestTermKeys:
    def test_roundtrip(self):
        term = FieldTerm(TITLE, "probabilistic")
        assert _parse_term_key(_term_key(term)) == term

    def test_text_with_separator(self):
        # atomic names may contain anything but '|' is split max twice
        term = FieldTerm(("authors", "name"), "doe, john jr.")
        assert _parse_term_key(_term_key(term)) == term


class TestPrecomputer:
    def test_validation(self, toy_graph):
        with pytest.raises(ReproError):
            OfflinePrecomputer(toy_graph, n_similar=0)

    def test_vocabulary_all_fields(self, precomputer, toy_index):
        assert len(precomputer.vocabulary()) == toy_index.vocabulary_size()

    def test_vocabulary_field_filter(self, precomputer):
        vocab = precomputer.vocabulary(fields=[TITLE])
        assert len(vocab) == 10
        assert all(t.field == TITLE for t in vocab)

    def test_precompute_term_matches_live(self, precomputer, toy_graph):
        term = FieldTerm(TITLE, "probabilistic")
        relations = precomputer.precompute_term(term)
        node_id = toy_graph.term_node_id(term)
        live = precomputer.similarity.similar_nodes(node_id, 8)
        stored_scores = [s for _k, s in relations.similar]
        assert stored_scores == [s.score for s in live]


class TestStore:
    def test_covers_vocabulary(self, store, toy_index):
        assert len(store) == toy_index.vocabulary_size()

    def test_contains(self, store):
        assert FieldTerm(TITLE, "probabilistic") in store
        assert FieldTerm(TITLE, "zzz") not in store

    def test_similar_nodes_match_live(self, store, toy_graph, toy_similarity):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        stored = store.similar_nodes(node_id, 5)
        live = toy_similarity.similar_nodes(node_id, 5)
        assert [s.node_id for s in stored] == [s.node_id for s in live]
        assert [s.score for s in stored] == pytest.approx(
            [s.score for s in live]
        )

    def test_similarity_lookup(self, store, toy_graph):
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        query = toy_graph.term_node_id(FieldTerm(TITLE, "query"))
        assert store.similarity(prob, query) > 0

    def test_similarity_unknown_pair_zero(self, store, toy_graph):
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        tuple_id = toy_graph.tuple_node_id(("papers", 0))
        assert store.similarity(prob, tuple_id) == 0.0
        assert store.similarity(tuple_id, prob) == 0.0

    def test_closeness_matches_live(self, store, toy_graph, toy_closeness):
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        query = toy_graph.term_node_id(FieldTerm(TITLE, "query"))
        assert store.closeness(prob, query) == pytest.approx(
            toy_closeness.closeness(prob, query)
        )

    def test_closeness_outside_stored_row_zero(self, toy_graph, precomputer):
        tight = OfflinePrecomputer(
            toy_graph,
            closeness=ClosenessExtractor(toy_graph, beam_width=None),
            n_similar=3,
            closeness_top=1,
        )
        store = tight.build_store(fields=[TITLE])
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        # only the single closest term kept; everything else reads 0
        row = [
            other
            for other in toy_graph.same_class_ids(prob)
            if other != prob and store.closeness(prob, other) > 0
        ]
        assert len(row) <= 1

    def test_similar_terms_text_interface(self, store):
        terms = store.similar_terms("probabilistic", 3)
        assert len(terms) == 3


class TestSerialization:
    def test_roundtrip(self, store, toy_graph, tmp_path):
        path = tmp_path / "relations.json"
        store.save(path)
        loaded = TermRelationStore.load(path, toy_graph)
        assert len(loaded) == len(store)
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        assert [s.node_id for s in loaded.similar_nodes(prob, 5)] == [
            s.node_id for s in store.similar_nodes(prob, 5)
        ]

    def test_load_missing_file(self, toy_graph, tmp_path):
        with pytest.raises(ReproError):
            TermRelationStore.load(tmp_path / "nope.json", toy_graph)

    def test_load_bad_json(self, toy_graph, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError):
            TermRelationStore.load(path, toy_graph)

    def test_load_wrong_version(self, toy_graph, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text(
            json.dumps({"format_version": 99, "terms": {}}), encoding="utf-8"
        )
        with pytest.raises(ReproError):
            TermRelationStore.load(path, toy_graph)


class TestStoreBackedReformulator:
    def test_same_suggestions_as_live(self, toy_graph, store):
        config = ReformulatorConfig(n_candidates=5)
        live = Reformulator(toy_graph, config)
        # align the live closeness with what was stored (exact extractor)
        live_exact = Reformulator(
            toy_graph,
            config,
            closeness=ClosenessExtractor(toy_graph, beam_width=None),
        )
        cached = Reformulator(
            toy_graph, config, similarity=store, closeness=store
        )
        q = ["probabilistic", "query"]
        live_out = [s.text for s in live_exact.reformulate(q, k=5)]
        cached_out = [s.text for s in cached.reformulate(q, k=5)]
        assert cached_out == live_out
        # and the default live pipeline is consistent too (pruning wide
        # enough on the toy graph)
        assert [s.text for s in live.reformulate(q, k=5)] == live_out

    def test_store_reformulator_is_fast_path(self, toy_graph, store):
        cached = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=5),
            similarity=store,
            closeness=store,
        )
        out = cached.reformulate(["pattern", "mining"], k=3)
        assert out
