"""Edge-case and failure-injection tests across the whole pipeline.

Small corpora, degenerate inputs and unusual text — the situations a
downstream user hits first and bug reports are made of.
"""

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.errors import ReproError
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.search.keyword import KeywordSearchEngine
from repro.storage.database import Database
from repro.storage.schema import Column, DatabaseSchema, TableSchema
from repro.storage.tuplegraph import TupleGraph

from tests.conftest import build_toy_database, toy_schema


def single_table_db(rows):
    """A one-table database with a segmented text field."""
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "notes",
        [Column("nid", "int", nullable=False), Column("body", "text")],
        primary_key="nid",
    ))
    db = Database(schema)
    for nid, body in enumerate(rows):
        db.insert("notes", {"nid": nid, "body": body})
    return db


class TestDegenerateCorpora:
    def test_empty_database_pipeline(self):
        db = Database(toy_schema())
        graph = TATGraph(db, InvertedIndex(db))
        assert graph.n_nodes == 0
        reformulator = Reformulator(graph, ReformulatorConfig(n_candidates=3))
        out = reformulator.reformulate(["anything"], k=3)
        # unknown keyword keeps only the original; identity is dropped
        assert out == []

    def test_single_tuple_corpus(self):
        db = single_table_db(["lonely probabilistic note"])
        reformulator = Reformulator.from_database(
            db, ReformulatorConfig(n_candidates=3)
        )
        out = reformulator.reformulate(["probabilistic"], k=3)
        # only title-mates exist as candidates
        texts = {q.text for q in out}
        assert texts <= {"lonely", "note"}

    def test_no_fk_schema_still_works(self):
        db = single_table_db([
            "alpha beta gamma", "beta gamma delta", "alpha delta",
        ])
        graph = TATGraph(db, InvertedIndex(db))
        assert graph.n_edges > 0  # containment edges only
        engine = KeywordSearchEngine(TupleGraph(db), InvertedIndex(db))
        assert engine.result_size(["beta", "gamma"]) >= 2

    def test_table_without_text_fields_only(self):
        schema = DatabaseSchema()
        schema.add_table(TableSchema(
            "numbers",
            [Column("id", "int", nullable=False), Column("v", "int")],
            primary_key="id",
        ))
        db = Database(schema)
        db.insert("numbers", {"id": 1, "v": 42})
        index = InvertedIndex(db).build()
        assert index.vocabulary_size() == 0
        graph = TATGraph(db, index)
        assert graph.stats()["term_nodes"] == 0


class TestUnusualText:
    def test_unicode_terms(self):
        db = single_table_db(["bücher über datenbanken", "über graphen"])
        index = InvertedIndex(db).build()
        # the analyzer is ascii-token based: non-ascii words are split on
        # the non-ascii characters rather than crashing
        graph = TATGraph(db, index)
        assert graph.n_nodes > 0

    def test_very_long_title(self):
        long_title = " ".join(f"word{i}" for i in range(300))
        db = single_table_db([long_title, "word1 word2"])
        reformulator = Reformulator.from_database(
            db, ReformulatorConfig(n_candidates=3)
        )
        assert reformulator.reformulate(["word1"], k=2) is not None

    def test_repeated_words_in_title(self):
        db = single_table_db(["echo echo echo chamber"])
        index = InvertedIndex(db).build()
        from repro.index.inverted import FieldTerm

        assert index.total_tf(FieldTerm(("notes", "body"), "echo")) == 3

    def test_punctuation_only_title(self):
        db = single_table_db(["!!! ??? ...", "real words here"])
        index = InvertedIndex(db).build()
        assert index.vocabulary_size() == 3  # real, words, here


class TestDegenerateQueries:
    def test_eight_keyword_query_on_toy(self, toy_graph):
        reformulator = Reformulator(
            toy_graph, ReformulatorConfig(n_candidates=4)
        )
        keywords = [
            "probabilistic", "query", "answering", "uncertain",
            "data", "management", "frequent", "pattern",
        ]
        out = reformulator.reformulate(keywords, k=3)
        assert all(len(q.terms) == 8 for q in out)

    def test_all_unknown_keywords(self, toy_graph):
        reformulator = Reformulator(
            toy_graph, ReformulatorConfig(n_candidates=4)
        )
        out = reformulator.reformulate(["zzz", "yyy"], k=3)
        assert out == []  # only the identity exists, and it is dropped

    def test_duplicate_input_keywords(self, toy_graph):
        """Degenerate input (Definition 2 forbids it) must not crash."""
        reformulator = Reformulator(
            toy_graph, ReformulatorConfig(n_candidates=4)
        )
        out = reformulator.reformulate(["pattern", "pattern"], k=3)
        for q in out:
            assert len(set(q.keywords)) == len(q.keywords)

    def test_k_one(self, toy_graph):
        reformulator = Reformulator(
            toy_graph, ReformulatorConfig(n_candidates=4)
        )
        out = reformulator.reformulate(["probabilistic", "query"], k=1)
        assert len(out) == 1

    def test_search_keyword_matching_everything(self, toy_db):
        """A keyword present in every paper still terminates cleanly."""
        db = build_toy_database()
        for pid in range(10, 30):
            db.insert("papers", {
                "pid": pid, "title": "common filler words",
                "cid": 0, "year": 2000,
            })
        engine = KeywordSearchEngine(
            TupleGraph(db), InvertedIndex(db), max_results=5
        )
        results = engine.search(["common"])
        assert results.size == 5 and results.truncated


class TestNumericalRobustness:
    def test_tiny_smoothing_lambda(self, toy_graph):
        reformulator = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=4, smoothing_lambda=0.01),
        )
        out = reformulator.reformulate(["probabilistic", "query"], k=3)
        assert all(q.score >= 0 for q in out)

    def test_smoothing_disabled(self, toy_graph):
        reformulator = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=4, smoothing_lambda=1.0),
        )
        out = reformulator.reformulate(["probabilistic", "query"], k=3)
        assert out  # zero-closeness paths pruned, others survive

    def test_extreme_damping_values(self, toy_graph):
        for damping in (0.01, 0.99):
            reformulator = Reformulator(
                toy_graph,
                ReformulatorConfig(n_candidates=4, damping=damping),
            )
            assert reformulator.reformulate(["pattern"], k=2) is not None

    def test_closeness_depth_one(self, toy_graph):
        """Depth 1 cannot connect two terms (they are 2 hops apart):
        transitions all fall back to smoothing, scores stay finite."""
        reformulator = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=4, closeness_depth=1),
        )
        out = reformulator.reformulate(["probabilistic", "query"], k=3)
        for q in out:
            assert q.score >= 0
