"""Unit tests for repro.eval.agreement."""

import pytest

from repro.core.scoring import ScoredQuery
from repro.errors import ReproError
from repro.eval.agreement import (
    fleiss_kappa,
    panel_agreement,
    raw_agreement,
)


class TestFleissKappa:
    def test_perfect_agreement(self):
        matrix = [[1, 1, 1], [0, 0, 0], [1, 1, 1]]
        assert fleiss_kappa(matrix) == pytest.approx(1.0)

    def test_single_category_everywhere(self):
        assert fleiss_kappa([[1, 1], [1, 1]]) == 1.0

    def test_total_disagreement_two_judges(self):
        matrix = [[0, 1], [1, 0], [0, 1], [1, 0]]
        assert fleiss_kappa(matrix) == pytest.approx(-1.0)

    def test_textbook_value(self):
        """Classic Fleiss example reduced to binary: hand-computed."""
        matrix = [
            [1, 1, 0], [1, 1, 1], [0, 0, 0], [1, 0, 0], [1, 1, 1],
        ]
        # hand computation:
        # P_i per row (n=3, P_i=(Σc²-3)/6): row1 (4+1-3)/6=1/3,
        # row2 1, row3 1, row4 1/3, row5 1 -> P̄ = 11/15
        # labels: nine 1s, six 0s -> p(1)=3/5, p(0)=2/5
        # P_e = 9/25 + 4/25 = 13/25
        expected = (11 / 15 - 13 / 25) / (1 - 13 / 25)
        assert fleiss_kappa(matrix) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ReproError):
            fleiss_kappa([])
        with pytest.raises(ReproError):
            fleiss_kappa([[1]])
        with pytest.raises(ReproError):
            fleiss_kappa([[1, 0], [1]])


class TestRawAgreement:
    def test_fraction_unanimous(self):
        matrix = [[1, 1], [0, 1], [0, 0], [1, 0]]
        assert raw_agreement(matrix) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            raw_agreement([])


class TestPanelAgreement:
    def test_panel_over_toy_suggestions(self, toy_search, small_corpus):
        from repro.eval.judge import JudgePanel

        # toy search engine + small corpus truth: only term verdicts
        # matter here, cohesion judges consult the toy engine
        panel = JudgePanel(small_corpus.ground_truth)
        judged = [
            (
                ("probabilistic",),
                ScoredQuery(("uncertain",), 0.1, (0,)),
            ),
            (
                ("probabilistic",),
                ScoredQuery(("twig",), 0.1, (0,)),
            ),
            (
                ("clustering",),
                ScoredQuery(("density",), 0.1, (0,)),
            ),
        ]
        report = panel_agreement(panel, judged)
        assert report.n_items == 3
        assert report.n_judges == 3
        assert 0.0 <= report.raw_agreement <= 1.0
        assert -1.0 <= report.fleiss_kappa <= 1.0
        # without cohesion in play, the three judges agree on clear-cut
        # topical verdicts
        assert report.raw_agreement == 1.0

    def test_empty_items_rejected(self, small_corpus):
        from repro.eval.judge import JudgePanel

        with pytest.raises(ReproError):
            panel_agreement(JudgePanel(small_corpus.ground_truth), [])
