"""Tests for batched random walks (walk_many) and batched precompute."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, GraphError
from repro.graph.randomwalk import RandomWalkEngine
from repro.graph.similarity import SimilarityExtractor

from tests.test_graph_randomwalk import line_graph, star_graph


class TestWalkMany:
    def test_matches_single_walks(self):
        engine = RandomWalkEngine(line_graph(9), tol=1e-12)
        sources = [0, 3, 7]
        prefs = np.zeros((9, len(sources)))
        for col, s in enumerate(sources):
            prefs[:, col] = engine.indicator_preference(s)
        batched = engine.walk_many(prefs)
        for col, s in enumerate(sources):
            single = engine.individual_walk(s).scores
            assert np.allclose(batched[:, col], single, atol=1e-9)

    def test_columns_are_distributions(self):
        engine = RandomWalkEngine(star_graph(6))
        prefs = np.random.RandomState(0).rand(6, 4) + 0.01
        out = engine.walk_many(prefs)
        assert np.allclose(out.sum(axis=0), 1.0)
        assert (out >= 0).all()

    def test_shape_validation(self):
        engine = RandomWalkEngine(line_graph(5))
        with pytest.raises(GraphError):
            engine.walk_many(np.ones(5))  # 1-d
        with pytest.raises(GraphError):
            engine.walk_many(np.ones((4, 2)))  # wrong node count

    def test_zero_mass_column_rejected(self):
        engine = RandomWalkEngine(line_graph(5))
        prefs = np.ones((5, 2))
        prefs[:, 1] = 0.0
        with pytest.raises(GraphError):
            engine.walk_many(prefs)

    def test_strict_raises_on_budget(self):
        engine = RandomWalkEngine(
            line_graph(9), max_iterations=1, tol=1e-15, strict=True
        )
        prefs = np.ones((9, 2))
        with pytest.raises(ConvergenceError):
            engine.walk_many(prefs)

    def test_dangling_column_mass_restored(self):
        from repro.graph.adjacency import AdjacencyBuilder

        builder = AdjacencyBuilder()
        builder.add_edge(0, 1)
        adj = builder.freeze(3)  # node 2 isolated
        engine = RandomWalkEngine(adj)
        prefs = np.array([[0.5, 0.2], [0.3, 0.3], [0.2, 0.5]])
        out = engine.walk_many(prefs)
        assert np.allclose(out.sum(axis=0), 1.0)


class TestBatchedPrecompute:
    def test_equals_lazy_extraction(self, toy_graph):
        lazy = SimilarityExtractor(toy_graph)
        batched = SimilarityExtractor(toy_graph)
        node_ids = list(toy_graph.registry.term_ids())[:6]
        batched.precompute(node_ids, batch_size=2)
        for node_id in node_ids:
            assert np.allclose(
                lazy.walk_scores(node_id),
                batched.walk_scores(node_id),
                atol=1e-8,
            )

    def test_cache_filled(self, toy_graph):
        sim = SimilarityExtractor(toy_graph)
        node_ids = list(toy_graph.registry.term_ids())
        sim.precompute(node_ids)
        assert sim.cache_size() == len(node_ids)

    def test_precompute_idempotent(self, toy_graph):
        sim = SimilarityExtractor(toy_graph)
        node_ids = list(toy_graph.registry.term_ids())[:3]
        sim.precompute(node_ids)
        first = sim.walk_scores(node_ids[0])
        sim.precompute(node_ids)
        assert sim.walk_scores(node_ids[0]) is first

    def test_individual_variant_batched(self, toy_graph):
        sim = SimilarityExtractor(toy_graph, contextual=False)
        node_ids = list(toy_graph.registry.term_ids())[:4]
        sim.precompute(node_ids, batch_size=3)
        reference = SimilarityExtractor(toy_graph, contextual=False)
        for node_id in node_ids:
            assert np.allclose(
                sim.walk_scores(node_id),
                reference.walk_scores(node_id),
                atol=1e-8,
            )
