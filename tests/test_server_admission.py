"""Unit tests for the serving daemon's socket-free building blocks:
admission control, deadlines, the latency estimator and the config."""

import threading
import time

import pytest

from repro.server import (
    AdmissionController,
    Deadline,
    LatencyEstimator,
    OverloadedError,
    ServerConfig,
    ServerConfigError,
    SHED_QUEUE_FULL,
    SHED_TIMEOUT,
    should_degrade,
)


class TestAdmissionController:
    def test_admits_up_to_capacity(self):
        admission = AdmissionController(2, queue_depth=0)
        admission.acquire()
        admission.acquire()
        assert admission.stats().executing == 2
        assert admission.saturated

    def test_sheds_when_queue_full(self):
        admission = AdmissionController(1, queue_depth=0)
        admission.acquire()
        with pytest.raises(OverloadedError) as exc_info:
            admission.acquire()
        assert exc_info.value.reason == SHED_QUEUE_FULL
        assert admission.stats().shed_queue_full == 1

    def test_sheds_on_queue_timeout(self):
        admission = AdmissionController(
            1, queue_depth=1, queue_timeout_s=0.05
        )
        admission.acquire()
        start = time.perf_counter()
        with pytest.raises(OverloadedError) as exc_info:
            admission.acquire()
        assert exc_info.value.reason == SHED_TIMEOUT
        assert time.perf_counter() - start >= 0.04
        assert admission.stats().shed_timeout == 1

    def test_caller_timeout_caps_queue_wait(self):
        """A request with little deadline budget must not wait the full
        configured queue timeout."""
        admission = AdmissionController(
            1, queue_depth=1, queue_timeout_s=5.0
        )
        admission.acquire()
        start = time.perf_counter()
        with pytest.raises(OverloadedError):
            admission.acquire(timeout_s=0.05)
        assert time.perf_counter() - start < 1.0

    def test_queued_request_admitted_on_release(self):
        admission = AdmissionController(
            1, queue_depth=1, queue_timeout_s=5.0
        )
        admission.acquire()
        admitted = threading.Event()

        def waiter():
            admission.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        assert admission.stats().waiting == 1
        admission.release()
        thread.join(timeout=5.0)
        assert admitted.is_set()
        stats = admission.stats()
        assert stats.admitted == 2 and stats.shed == 0

    def test_release_restores_capacity(self):
        admission = AdmissionController(1, queue_depth=0)
        with admission.admit():
            assert admission.stats().executing == 1
        with admission.admit():
            pass
        stats = admission.stats()
        assert stats.executing == 0 and stats.admitted == 2

    def test_admit_releases_on_exception(self):
        admission = AdmissionController(1, queue_depth=0)
        with pytest.raises(RuntimeError):
            with admission.admit():
                raise RuntimeError("handler blew up")
        assert admission.stats().executing == 0
        admission.acquire()  # permit is back

    def test_concurrent_hammer_counts_reconcile(self):
        """admitted + shed == attempts, and permits are never leaked."""
        admission = AdmissionController(
            2, queue_depth=2, queue_timeout_s=0.02
        )
        attempts_per_thread = 25
        errors = []

        def worker():
            for _ in range(attempts_per_thread):
                try:
                    with admission.admit():
                        time.sleep(0.001)
                except OverloadedError:
                    pass
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = admission.stats()
        assert stats.admitted + stats.shed == 8 * attempts_per_thread
        assert stats.executing == 0 and stats.waiting == 0


class TestDeadline:
    def test_unlimited(self):
        deadline = Deadline.from_ms(None)
        assert deadline.unlimited
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()

    def test_zero_means_unlimited(self):
        assert Deadline.from_ms(0).unlimited

    def test_budget_counts_down(self):
        deadline = Deadline.from_ms(50)
        assert 0 < deadline.remaining() <= 0.05
        assert not deadline.expired()

    def test_expiry(self):
        deadline = Deadline.from_ms(1)
        time.sleep(0.01)
        assert deadline.expired()
        assert deadline.remaining() < 0


class TestLatencyEstimator:
    def test_floor_before_samples(self):
        estimator = LatencyEstimator(floor_s=0.01)
        assert estimator.estimate() == 0.01
        assert estimator.samples == 0

    def test_ewma_tracks_observations(self):
        estimator = LatencyEstimator(floor_s=0.001, alpha=0.5)
        estimator.observe(0.1)
        assert estimator.estimate() == pytest.approx(0.1)
        estimator.observe(0.2)
        assert estimator.estimate() == pytest.approx(0.15)
        assert estimator.samples == 2

    def test_floor_applies_to_tiny_ewma(self):
        estimator = LatencyEstimator(floor_s=0.01)
        estimator.observe(0.0001)
        assert estimator.estimate() == 0.01

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatencyEstimator(floor_s=0.0)
        with pytest.raises(ValueError):
            LatencyEstimator(alpha=0.0)


class TestShouldDegrade:
    def test_no_deadline_never_degrades(self):
        estimator = LatencyEstimator(floor_s=10.0)
        assert not should_degrade(Deadline.from_ms(None), estimator, 1.5)

    def test_tight_deadline_degrades(self):
        estimator = LatencyEstimator(floor_s=0.05)
        assert should_degrade(Deadline.from_ms(1), estimator, 1.5)

    def test_roomy_deadline_takes_full_path(self):
        estimator = LatencyEstimator(floor_s=0.001)
        estimator.observe(0.002)
        assert not should_degrade(Deadline.from_ms(5000), estimator, 1.5)


class TestServerConfig:
    def test_defaults_validate(self):
        ServerConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"max_concurrency": 0},
        {"queue_depth": -1},
        {"queue_timeout_s": -0.5},
        {"default_deadline_ms": -1},
        {"degrade_safety": 0.0},
        {"min_latency_estimate_s": 0.0},
        {"retry_after_min_s": 0},
        {"retry_after_min_s": 10, "retry_after_max_s": 5},
        {"max_batch_workers": 0},
        {"default_k": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ServerConfigError):
            ServerConfig(**kwargs).validate()
