"""Unit tests for repro.search.estimate (result-size estimation)."""

import pytest

from repro.errors import ReproError
from repro.search.estimate import ResultSizeEstimator
from repro.search.keyword import KeywordSearchEngine


@pytest.fixture(scope="module")
def toy_estimator(toy_tuple_graph, toy_index):
    return ResultSizeEstimator(toy_tuple_graph, toy_index, depth=2)


@pytest.fixture(scope="module")
def toy_engine(toy_tuple_graph, toy_index):
    return KeywordSearchEngine(
        toy_tuple_graph, toy_index, max_depth=2, max_results=10_000
    )


class TestBalls:
    def test_ball_contains_matches(self, toy_estimator):
        ball = toy_estimator.ball("probabilistic")
        assert ("papers", 0) in ball and ("papers", 3) in ball

    def test_ball_radius(self, toy_estimator):
        ball = toy_estimator.ball("probabilistic")
        # depth 2 from p0: conference 0, writes 0, ann, p3's venue etc.
        assert ("conferences", 0) in ball
        assert ("authors", 0) in ball

    def test_unknown_keyword_empty_ball(self, toy_estimator):
        assert toy_estimator.ball("zzz") == frozenset()

    def test_ball_cached(self, toy_estimator):
        assert toy_estimator.ball("pattern") is toy_estimator.ball("pattern")

    def test_precompute_and_summary_size(
        self, toy_tuple_graph, toy_index
    ):
        estimator = ResultSizeEstimator(toy_tuple_graph, toy_index)
        estimator.precompute(["pattern", "mining"])
        assert estimator.summary_size() > 0

    def test_validation(self, toy_tuple_graph, toy_index):
        with pytest.raises(ReproError):
            ResultSizeEstimator(toy_tuple_graph, toy_index, depth=-1)


class TestEstimates:
    def test_zero_iff_engine_zero_on_toy(self, toy_estimator, toy_engine):
        cases = [
            ["probabilistic", "query"],
            ["probabilistic", "uncertain"],
            ["ann", "bob"],              # cross-component: no results
            ["probabilistic", "zzz"],    # unmatched keyword
            ["frequent", "pattern", "mining"],
        ]
        for keywords in cases:
            actual = toy_engine.result_size(keywords)
            estimated = toy_estimator.estimate(keywords)
            assert (estimated == 0) == (actual == 0), keywords

    def test_empty_query(self, toy_estimator):
        assert toy_estimator.estimate([]) == 0
        assert toy_estimator.estimate(["  "]) == 0

    def test_single_keyword_counts_ball(self, toy_estimator):
        # single keyword: every match is a root, plus its neighborhood
        assert toy_estimator.estimate(["pattern"]) >= 2

    def test_is_cohesive_matches_engine(self, toy_estimator, toy_engine):
        assert toy_estimator.is_cohesive(["probabilistic", "uncertain"])
        assert not toy_estimator.is_cohesive(["ann", "bob"])

    def test_monotone_in_query_length(self, toy_estimator):
        """Adding a keyword can only shrink the intersection."""
        two = toy_estimator.estimate(["probabilistic", "pattern"])
        three = toy_estimator.estimate(
            ["probabilistic", "pattern", "mining"]
        )
        assert three <= two


class TestCorrelationAtScale:
    def test_rank_correlation_with_engine(self, small_corpus, small_index):
        """Estimates must rank queries like the real engine does."""
        from scipy import stats

        from repro.data.workloads import WorkloadGenerator
        from repro.storage.tuplegraph import TupleGraph

        tuple_graph = TupleGraph(small_corpus.database)
        engine = KeywordSearchEngine(
            tuple_graph, small_index, max_depth=2, max_results=100_000
        )
        estimator = ResultSizeEstimator(tuple_graph, small_index, depth=2)
        queries = WorkloadGenerator(small_corpus, seed=17).mixed_queries(15)
        actual = [
            engine.result_size(list(q.keywords)) for q in queries
        ]
        estimated = [
            estimator.estimate(list(q.keywords)) for q in queries
        ]
        rho, _p = stats.spearmanr(actual, estimated)
        assert rho > 0.7
