"""Meta-test: every public item of the library carries a docstring.

"Documentation on every public item" is a deliverable, so it is enforced
mechanically: every public module, class, function and method reachable
from the ``repro`` package must have a non-trivial docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

IGNORED_METHODS = {
    # dunder/dataclass machinery and trivial container protocol methods
    "__init__", "__repr__", "__str__", "__len__", "__iter__",
    "__contains__", "__getitem__", "__eq__", "__hash__",
}


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__
            for m in iter_modules()
            if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in public_members(module):
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        undocumented = []
        for module in iter_modules():
            for cls_name, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_") or name in IGNORED_METHODS:
                        continue
                    func = None
                    if inspect.isfunction(member):
                        func = member
                    elif isinstance(member, property):
                        func = member.fget
                    elif isinstance(member, (classmethod, staticmethod)):
                        func = member.__func__
                    if func is None:
                        continue
                    if not (func.__doc__ or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{cls_name}.{name}"
                        )
        assert undocumented == []
