"""Unit tests for repro.storage.triples (RDF-style ingestion)."""

import pytest

from repro.errors import ReproError
from repro.storage.triples import Literal, TripleStore, triple_schema


@pytest.fixture()
def movie_store() -> TripleStore:
    store = TripleStore()
    store.add_many([
        ("inception", "directed_by", "nolan"),
        ("inception", "genre", "scifi"),
        ("inception", "tagline", Literal("dreams within dreams heist")),
        ("interstellar", "directed_by", "nolan"),
        ("interstellar", "genre", "scifi"),
        ("interstellar", "tagline", Literal("wormhole space farming epic")),
        ("alien", "genre", "scifi"),
        ("alien", "tagline", Literal("space horror crew nightmare")),
    ])
    return store


class TestCollection:
    def test_counts(self, movie_store):
        assert len(movie_store) == 8
        # entities: 3 movies + nolan + scifi
        assert movie_store.entity_count == 5
        assert movie_store.predicate_count == 3

    def test_validation(self):
        store = TripleStore()
        with pytest.raises(ReproError):
            store.add("", "p", "o")
        with pytest.raises(ReproError):
            store.add("s", "", "o")
        with pytest.raises(ReproError):
            store.add("s", "p", "")
        with pytest.raises(ReproError):
            store.add("s", "p", Literal(""))

    def test_entities_created_on_mention(self):
        store = TripleStore()
        store.add("a", "knows", "b")
        assert store.entity_count == 2


class TestCompilation:
    def test_schema_shape(self):
        schema = triple_schema()
        assert set(schema.tables) == {"entities", "predicates", "facts"}
        assert len(schema.foreign_keys) == 3

    def test_database_integrity(self, movie_store):
        db = movie_store.to_database()
        db.check_integrity()
        assert len(db.table("entities")) == 5
        assert len(db.table("facts")) == 8

    def test_entity_ref(self, movie_store):
        movie_store.to_database()
        table, eid = movie_store.entity_ref("nolan")
        assert table == "entities"

    def test_unknown_entity_ref(self, movie_store):
        with pytest.raises(ReproError):
            movie_store.entity_ref("spielberg")

    def test_literal_vs_entity_objects(self, movie_store):
        db = movie_store.to_database()
        rows = list(db.table("facts").scan())
        entity_valued = [r for r in rows if r["object"] is not None]
        literal_valued = [r for r in rows if r["literal"] is not None]
        assert len(entity_valued) == 5
        assert len(literal_valued) == 3


class TestPipelineOverTriples:
    def test_tat_graph_connects_shared_predicates(self, movie_store):
        """Movies by the same director connect through entity facts."""
        from repro.graph.tat import TATGraph
        from repro.index.inverted import InvertedIndex
        from repro.storage.tuplegraph import TupleGraph

        db = movie_store.to_database()
        tg = TupleGraph(db)
        inception = movie_store.entity_ref("inception")
        interstellar = movie_store.entity_ref("interstellar")
        path = tg.shortest_path(inception, interstellar, max_depth=6)
        assert path  # inception - fact - nolan - fact - interstellar
        assert len(path) == 5

    def test_reformulation_over_knowledge_graph(self, movie_store):
        """End to end: literal vocabulary is reformulable."""
        from repro import Reformulator, ReformulatorConfig

        db = movie_store.to_database()
        reformulator = Reformulator.from_database(
            db, ReformulatorConfig(n_candidates=5)
        )
        # "wormhole" (interstellar) should suggest sibling sci-fi words
        terms = dict(reformulator.similarity.similar_terms("wormhole", 8))
        assert terms  # connected through tagline facts and genre entity

    def test_entity_labels_are_atomic_terms(self, movie_store):
        from repro.index.inverted import FieldTerm, InvertedIndex

        db = movie_store.to_database()
        index = InvertedIndex(db).build()
        label = FieldTerm(("entities", "label"), "nolan")
        assert index.df(label) == 1

    def test_keyword_search_over_triples(self, movie_store):
        from repro.index.inverted import InvertedIndex
        from repro.search.keyword import KeywordSearchEngine
        from repro.storage.tuplegraph import TupleGraph

        db = movie_store.to_database()
        engine = KeywordSearchEngine(TupleGraph(db), InvertedIndex(db))
        results = engine.search(["nolan", "space"])
        assert results.size >= 1  # interstellar joins both
