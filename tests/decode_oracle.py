"""Differential decode oracle: the executable tie-break contract.

Every decode lane of the online stage is registered here and checked
against every other lane on the same HMM instance.  The contract the
oracle enforces (stated informally in ``repro/core/viterbi.py``):

1. **Output order** — every lane returns paths sorted by
   ``(score desc, state_path lex asc)``; in particular, equal-scored
   neighbours must appear in ascending lexicographic path order.
2. **Result size** — exactly ``min(k, search_space)`` paths, no
   duplicates.
3. **Scores** — every returned score equals Eq 10's ``path_score``
   bit-for-bit, and the score *sequences* of all lanes in the same
   arithmetic space are bit-identical rank by rank.
4. **Paths** —
   * reference vs vectorized twins of the same algorithm: bit-identical
     paths and order, **always** (this is the equivalence the PR's
     vectorization rests on);
   * ``viterbi_topk`` (linear) vs the brute-force oracle: score
     sequences are bit-identical rank for rank, always (both select on
     forward-accumulated Eq 10 products and fp multiplication is
     monotone).  Paths are bit-identical whenever ``k`` covers the whole
     search space, or the returned scores are strictly decreasing,
     positive, and not tied with the first excluded path.  At an exact
     score tie the DP may return a lexicographically different member of
     the tie class: fp monotonicity is non-strict, so a strictly greater
     prefix can collapse into an exact tie at a later step, dominating
     the lex-smallest tied path out of the per-state memo (ties from
     *different* factor multisets, e.g. 0.5·0.5 == 0.25·1.0, do this;
     ties with identical factor sequences — twin states — cannot);
   * ``astar*`` lanes vs anything outside their twin pair: exact up to
     floating-point near-ties.  The admissible heuristic is accumulated
     *backward*, a different association order than the forward path
     score, so priorities can be an ulp off and flip within-an-ulp
     neighbours at the k-th boundary;
   * linear vs log space: likewise exact up to near-ties (selection on
     summed logs rounds differently than products).  Wherever paths
     differ at a rank, the two scores must agree to ~1e-9 relative.
5. **Top-1** — ``viterbi_top1*`` equals ``topk(hmm, 1)[0]`` of the same
   space bit-for-bit, always (it is the k=1 specialization of the same
   recursion), and matches the exhaustive oracle's rank-1 path whenever
   the best score is positive and uniquely achieved.

Run it standalone against freshly generated random instances with::

    PYTHONPATH=src python -m tests.decode_oracle --instances 500 --seed 3
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.astar import (
    astar_topk,
    astar_topk_log,
    astar_topk_vec,
    astar_topk_vec_log,
)
from repro.core.candidates import CandidateState, StateKind
from repro.core.enumeration import brute_force_topk
from repro.core.hmm import ReformulationHMM
from repro.core.scoring import ScoredQuery
from repro.core.viterbi import (
    viterbi_top1,
    viterbi_top1_log,
    viterbi_top1_vec,
    viterbi_top1_vec_log,
    viterbi_topk,
    viterbi_topk_log,
    viterbi_topk_vec,
    viterbi_topk_vec_log,
)

#: Relative tolerance for cross-space (linear vs log) comparisons: paths
#: may only diverge where scores collide within this window.
NEAR_TIE_REL = 1e-9


@dataclass(frozen=True)
class Lane:
    """One registered top-k decoder."""

    name: str
    space: str    # "linear" | "log" — the arithmetic the selection runs in
    family: str   # "dp" (per-state truncation) | "global" (full enumeration order)
    fn: Callable[[ReformulationHMM, int], List[ScoredQuery]]


TOPK_LANES: Tuple[Lane, ...] = (
    Lane("viterbi_topk/reference", "linear", "dp", viterbi_topk),
    Lane("viterbi_topk/vectorized", "linear", "dp", viterbi_topk_vec),
    Lane("viterbi_topk_log/reference", "log", "dp", viterbi_topk_log),
    Lane("viterbi_topk_log/vectorized", "log", "dp", viterbi_topk_vec_log),
    Lane("astar/reference", "linear", "global",
         lambda hmm, k: astar_topk(hmm, k).queries),
    Lane("astar/vectorized", "linear", "global",
         lambda hmm, k: astar_topk_vec(hmm, k).queries),
    Lane("astar_log/reference", "log", "global",
         lambda hmm, k: astar_topk_log(hmm, k).queries),
    Lane("astar_log/vectorized", "log", "global",
         lambda hmm, k: astar_topk_vec_log(hmm, k).queries),
    Lane("brute_force/oracle", "linear", "global", brute_force_topk),
)

#: (name, space, fn) for the four single-best lanes.
TOP1_LANES: Tuple[Tuple[str, str, Callable[[ReformulationHMM], ScoredQuery]], ...] = (
    ("viterbi_top1/reference", "linear", viterbi_top1),
    ("viterbi_top1/vectorized", "linear", viterbi_top1_vec),
    ("viterbi_top1_log/reference", "log", viterbi_top1_log),
    ("viterbi_top1_log/vectorized", "log", viterbi_top1_vec_log),
)


def signature(queries: Sequence[ScoredQuery]) -> List[Tuple[Tuple[int, ...], float]]:
    """(path, score) pairs — the bit-exact comparison unit."""
    return [(q.state_path, q.score) for q in queries]


def run_topk_lanes(
    hmm: ReformulationHMM, k: int
) -> Dict[str, List[ScoredQuery]]:
    """Decode *hmm* with every registered top-k lane."""
    return {lane.name: lane.fn(hmm, k) for lane in TOPK_LANES}


def _check_lane_invariants(
    hmm: ReformulationHMM, name: str, res: List[ScoredQuery], k: int
) -> None:
    """Per-lane contract: size, order, uniqueness, recomputable scores."""
    expect = min(k, hmm.search_space)
    assert len(res) == expect, (
        f"{name}: returned {len(res)} paths, expected {expect}"
    )
    scores = [q.score for q in res]
    assert scores == sorted(scores, reverse=True), f"{name}: not score-sorted"
    paths = [q.state_path for q in res]
    assert len(set(paths)) == len(paths), f"{name}: duplicate paths"
    for q in res:
        assert q.score == hmm.path_score(q.state_path), (
            f"{name}: score {q.score!r} != Eq 10 for path {q.state_path}"
        )
    for (a, b) in zip(res, res[1:]):
        if a.score == b.score:
            assert a.state_path < b.state_path, (
                f"{name}: tied scores out of lexicographic order: "
                f"{a.state_path} before {b.state_path}"
            )


def check_topk_equivalence(hmm: ReformulationHMM, k: int) -> None:
    """Assert the full cross-lane contract on one (hmm, k) instance."""
    results = run_topk_lanes(hmm, k)
    for lane in TOPK_LANES:
        _check_lane_invariants(hmm, lane.name, results[lane.name], k)

    # Reference vs vectorized twins: bit-identical, unconditionally.
    for base in ("viterbi_topk", "viterbi_topk_log", "astar", "astar_log"):
        ref = signature(results[f"{base}/reference"])
        vec = signature(results[f"{base}/vectorized"])
        assert ref == vec, (
            f"{base}: reference and vectorized lanes diverge\n"
            f"  reference:  {ref}\n  vectorized: {vec}"
        )

    # Linear DP vs the exhaustive oracle: both select on the same
    # forward-accumulated products, so score sequences are bit-exact,
    # always.  Paths are bit-exact on tie-free instances (see module
    # docstring for why exact ties leave the DP lex slack).
    dp = results["viterbi_topk/reference"]
    oracle = results["brute_force/oracle"]
    assert [q.score for q in dp] == [q.score for q in oracle], (
        "viterbi_topk vs brute_force: score sequences differ"
    )
    exhaustive = len(oracle) == hmm.search_space
    if exhaustive:
        assert signature(dp) == signature(oracle), (
            "viterbi_topk vs brute_force: exhaustive decodes differ"
        )
    else:
        # Tie-free check must include the first *excluded* path: a tie
        # across the k-th boundary also leaves the DP slack.
        extended = brute_force_topk(hmm, k + 1)
        ext_scores = [q.score for q in extended]
        tie_free = all(
            a > b for a, b in zip(ext_scores, ext_scores[1:])
        ) and ext_scores[-1] > 0.0
        if tie_free:
            assert signature(dp) == signature(oracle), (
                "viterbi_topk vs brute_force: paths differ on a "
                "tie-free instance"
            )

    # Every remaining lane pair (A* lanes, log-space lanes) agrees with
    # the oracle rank-for-rank up to fp near-ties: scores within
    # NEAR_TIE_REL, and paths may only diverge where scores collide.
    for lane in TOPK_LANES:
        other = results[lane.name]
        for rank, (a, b) in enumerate(zip(other, oracle)):
            close = math.isclose(
                a.score, b.score, rel_tol=NEAR_TIE_REL, abs_tol=0.0
            )
            assert close, (
                f"{lane.name} rank {rank}: score {a.score!r} vs oracle "
                f"{b.score!r} beyond near-tie tolerance"
            )


def check_top1_equivalence(hmm: ReformulationHMM) -> None:
    """Assert the single-best contract on one HMM instance."""
    results = {name: fn(hmm) for name, _space, fn in TOP1_LANES}
    topk1 = run_topk_lanes(hmm, 1)

    # Twins bit-identical; each space's top1 == its own topk(1)[0].
    assert (
        signature([results["viterbi_top1/reference"]])
        == signature([results["viterbi_top1/vectorized"]])
        == signature([topk1["viterbi_topk/reference"][0]])
        == signature([topk1["viterbi_topk/vectorized"][0]])
    ), "linear top-1 lanes diverge from topk(1)"
    assert (
        signature([results["viterbi_top1_log/reference"]])
        == signature([results["viterbi_top1_log/vectorized"]])
        == signature([topk1["viterbi_topk_log/reference"][0]])
        == signature([topk1["viterbi_topk_log/vectorized"][0]])
    ), "log top-1 lanes diverge from topk_log(1)"

    best = results["viterbi_top1/reference"]
    extended = brute_force_topk(hmm, 2)
    oracle = extended[0]
    assert best.score == oracle.score, (
        "top-1 score disagrees with the exhaustive oracle"
    )
    uniquely_best = len(extended) == 1 or extended[1].score < oracle.score
    if best.score > 0.0 and uniquely_best:
        assert best.state_path == oracle.state_path, (
            "unique positive top-1 path disagrees with the exhaustive oracle"
        )
    astar1 = topk1["astar/reference"][0]
    assert math.isclose(
        best.score, astar1.score, rel_tol=NEAR_TIE_REL, abs_tol=0.0
    ), "top-1 score disagrees with A* rank-1 beyond near-tie tolerance"
    log_best = results["viterbi_top1_log/reference"]
    assert math.isclose(
        best.score, log_best.score, rel_tol=NEAR_TIE_REL, abs_tol=0.0
    ), "top-1 scores diverge across arithmetic spaces"


# --------------------------------------------------------------------------- #
# Standalone fuzz entry point (numpy-random, no hypothesis needed)
# --------------------------------------------------------------------------- #


def random_instance(rng: np.random.RandomState) -> ReformulationHMM:
    """One random adversarial HMM: mixed zeros, skew and tied palettes."""
    m = int(rng.randint(1, 5))
    sizes = [int(rng.randint(1, 6)) for _ in range(m)]
    profile = rng.choice(["uniform", "zero_heavy", "skewed", "palette"])

    def weights(shape):
        if profile == "zero_heavy":
            raw = rng.rand(*shape) * (rng.rand(*shape) > 0.6)
        elif profile == "skewed":
            raw = 10.0 ** -rng.randint(0, 13, size=shape).astype(np.float64)
        elif profile == "palette":
            raw = rng.choice([0.0, 0.25, 0.5, 1.0], size=shape)
        else:
            raw = rng.rand(*shape)
        return raw

    states = [
        [
            CandidateState(StateKind.SIMILAR, i * 8 + j, f"t{i}_{j}", 1.0)
            for j in range(n)
        ]
        for i, n in enumerate(sizes)
    ]
    pi = weights((sizes[0],))
    if pi.sum() == 0:
        pi[:] = 1.0
    emissions = []
    for n in sizes:
        e = weights((n,))
        if e.sum() == 0:
            e[:] = 1.0
        emissions.append(e / e.sum())
    transitions = [
        weights((sizes[i - 1], sizes[i])) for i in range(1, m)
    ]
    return ReformulationHMM(
        query=tuple(f"q{i}" for i in range(m)),
        states=states,
        pi=pi / pi.sum(),
        emissions=emissions,
        transitions=transitions,
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instances", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rng = np.random.RandomState(args.seed)
    for i in range(args.instances):
        hmm = random_instance(rng)
        k = int(rng.randint(1, 13))
        check_topk_equivalence(hmm, k)
        check_topk_equivalence(hmm, hmm.search_space + 3)
        check_top1_equivalence(hmm)
    print(
        f"decode oracle: {args.instances} instances x "
        f"{len(TOPK_LANES)} top-k lanes + {len(TOP1_LANES)} top-1 lanes: OK"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
