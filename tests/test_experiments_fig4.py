"""Tests for the Figure 4 quantification experiment."""

import pytest

from repro.experiments import build_context
from repro.experiments.fig4_context_effect import run


@pytest.fixture(scope="module")
def report():
    return run(build_context(scale="small", seed=7), max_pairs=15)


class TestFig4ContextEffect:
    def test_pairs_found(self, report):
        assert report.n_pairs >= 5

    def test_cooccurrence_blind_to_synonyms(self, report):
        assert report.cooccurrence_reachability == 0.0

    def test_walks_reach_synonyms(self, report):
        assert report.contextual_reachability > 0.8
        assert report.basic_reachability > 0.8

    def test_context_amplifies(self, report):
        assert report.mean_contextual_over_basic > 1.0

    def test_rows_render(self, report):
        rows = report.rows()
        assert len(rows) == 5
        assert all(isinstance(v, float) for _m, v in rows)
