"""Unit tests for repro.core.queryparse."""

import pytest

from repro.core.queryparse import QueryParser
from repro.errors import ReproError

from tests.conftest import build_toy_database


@pytest.fixture(scope="module")
def parser_with_names():
    """Toy graph extended with a multi-word author name."""
    from repro.graph.tat import TATGraph
    from repro.index.inverted import InvertedIndex

    db = build_toy_database()
    db.insert("authors", {"aid": 9, "name": "christian s. jensen"})
    db.insert("papers", {
        "pid": 9, "title": "spatio temporal indexing", "cid": 0, "year": 2005,
    })
    db.insert("writes", {"wid": 9, "aid": 9, "pid": 9})
    graph = TATGraph(db, InvertedIndex(db))
    return QueryParser(graph), graph


class TestParsing:
    def test_plain_words(self, toy_graph):
        parser = QueryParser(toy_graph)
        parsed = parser.parse("probabilistic query")
        assert parsed.keywords == ("probabilistic", "query")
        assert parsed.multiword == ()

    def test_author_name_kept_whole(self, parser_with_names):
        parser, _graph = parser_with_names
        parsed = parser.parse("spatio temporal christian s. jensen")
        assert parsed.keywords == (
            "spatio", "temporal", "christian s. jensen",
        )
        assert parsed.multiword == ("christian s. jensen",)

    def test_name_in_the_middle(self, parser_with_names):
        parser, _graph = parser_with_names
        parsed = parser.parse("christian s. jensen indexing")
        assert parsed.keywords == ("christian s. jensen", "indexing")

    def test_case_insensitive(self, parser_with_names):
        parser, _graph = parser_with_names
        parsed = parser.parse("Christian S. Jensen SPATIO")
        assert parsed.keywords[0] == "christian s. jensen"

    def test_unknown_words_pass_through(self, toy_graph):
        parser = QueryParser(toy_graph)
        parsed = parser.parse("zzzmystery query")
        assert parsed.keywords == ("zzzmystery", "query")

    def test_duplicates_removed(self, toy_graph):
        parser = QueryParser(toy_graph)
        parsed = parser.parse("query query pattern")
        assert parsed.keywords == ("query", "pattern")

    def test_empty_string(self, toy_graph):
        parser = QueryParser(toy_graph)
        assert parser.parse("   ").keywords == ()

    def test_stopwords_dropped_from_singles(self, toy_graph):
        parser = QueryParser(toy_graph)
        parsed = parser.parse("the probabilistic of query")
        assert parsed.keywords == ("probabilistic", "query")

    def test_no_greedy_overreach(self, parser_with_names):
        """A prefix of a known name must not swallow following words."""
        parser, _graph = parser_with_names
        parsed = parser.parse("christian mining")
        assert parsed.keywords == ("christian", "mining")

    def test_validation(self, toy_graph):
        with pytest.raises(ReproError):
            QueryParser(toy_graph, max_term_tokens=0)

    def test_multiword_vocabulary_counted(self, parser_with_names):
        parser, _graph = parser_with_names
        assert parser.multiword_vocabulary_size >= 1


class TestReformulatorIntegration:
    def test_reformulate_text(self, parser_with_names):
        from repro.core.reformulator import Reformulator, ReformulatorConfig

        _parser, graph = parser_with_names
        reformulator = Reformulator(
            graph, ReformulatorConfig(n_candidates=5)
        )
        out = reformulator.reformulate_text(
            "spatio temporal christian s. jensen", k=3
        )
        assert out
        # the author position stays an author (same-class candidates)
        for suggestion in out:
            assert len(suggestion.terms) == 3

    def test_reformulate_text_empty_raises(self, toy_graph):
        from repro.core.reformulator import Reformulator, ReformulatorConfig
        from repro.errors import ReformulationError

        reformulator = Reformulator(
            toy_graph, ReformulatorConfig(n_candidates=5)
        )
        with pytest.raises(ReformulationError):
            reformulator.reformulate_text("   ")
