"""Search-engine invariants on the synthesized corpus.

Definition 3 guarantees checked at realistic scale: every result is a
connected tree covering all keywords, with minimal branches; the engine
agrees with itself across depth settings; and the estimator brackets the
engine correctly.
"""

import pytest

from repro.search.estimate import ResultSizeEstimator
from repro.search.keyword import KeywordSearchEngine
from repro.storage.tuplegraph import TupleGraph


@pytest.fixture(scope="module")
def tuple_graph(small_db):
    return TupleGraph(small_db)


@pytest.fixture(scope="module")
def engine(tuple_graph, small_index):
    return KeywordSearchEngine(
        tuple_graph, small_index, max_depth=2, max_results=500
    )


@pytest.fixture(scope="module")
def sample_queries(small_corpus):
    from repro.data.workloads import WorkloadGenerator

    return WorkloadGenerator(small_corpus, seed=31).mixed_queries(8)


class TestDefinition3Invariants:
    def test_results_are_connected_trees(
        self, engine, tuple_graph, sample_queries
    ):
        for wq in sample_queries:
            for result in engine.search(list(wq.keywords)).top(10):
                nodes = set(result.nodes)
                seen = {result.root}
                frontier = [result.root]
                while frontier:
                    node = frontier.pop()
                    for nbr in tuple_graph.neighbors(node):
                        if nbr in nodes and nbr not in seen:
                            seen.add(nbr)
                            frontier.append(nbr)
                assert seen == nodes, wq.keywords

    def test_every_keyword_matched_in_tree(
        self, engine, small_index, sample_queries
    ):
        for wq in sample_queries:
            keywords = list(wq.keywords)
            for result in engine.search(keywords).top(10):
                assert {kw for kw, _r in result.matches} == set(keywords)
                for keyword, ref in result.matches:
                    assert ref in result.nodes
                    matched = small_index.tuples_matching(keyword)
                    assert ref in matched

    def test_tree_edges_are_graph_edges(
        self, engine, tuple_graph, sample_queries
    ):
        for wq in sample_queries:
            for result in engine.search(list(wq.keywords)).top(10):
                for a, b in result.edges:
                    assert b in tuple_graph.neighbors(a)

    def test_root_within_depth_of_every_match(
        self, engine, tuple_graph, sample_queries
    ):
        for wq in sample_queries:
            for result in engine.search(list(wq.keywords)).top(5):
                for _kw, ref in result.matches:
                    dist = tuple_graph.bfs_distances(
                        result.root, engine.max_depth
                    )
                    assert ref in dist


class TestDepthMonotonicity:
    def test_deeper_engine_finds_at_least_as_much(
        self, tuple_graph, small_index, sample_queries
    ):
        shallow = KeywordSearchEngine(
            tuple_graph, small_index, max_depth=1, max_results=100_000
        )
        deep = KeywordSearchEngine(
            tuple_graph, small_index, max_depth=2, max_results=100_000
        )
        for wq in sample_queries:
            keywords = list(wq.keywords)
            assert deep.result_size(keywords) >= shallow.result_size(keywords)


class TestEstimatorBracket:
    def test_estimator_zero_iff_engine_zero(
        self, tuple_graph, small_index, sample_queries
    ):
        engine = KeywordSearchEngine(
            tuple_graph, small_index, max_depth=2, max_results=100_000
        )
        estimator = ResultSizeEstimator(tuple_graph, small_index, depth=2)
        for wq in sample_queries:
            keywords = list(wq.keywords)
            assert (estimator.estimate(keywords) == 0) == (
                engine.result_size(keywords) == 0
            ), keywords
