"""Unit tests for repro.graph.context on the toy corpus."""

import pytest

from repro.errors import GraphError
from repro.graph.context import ContextualPreference
from repro.graph.nodes import NodeKind
from repro.graph.tat import TATGraph
from repro.index.inverted import FieldTerm, InvertedIndex

from tests.conftest import build_toy_database

TITLE = ("papers", "title")


@pytest.fixture()
def pref(toy_graph) -> ContextualPreference:
    return ContextualPreference(toy_graph)


class TestValidation:
    def test_hops_positive(self, toy_graph):
        with pytest.raises(GraphError):
            ContextualPreference(toy_graph, hops=0)

    def test_decay_bounds(self, toy_graph):
        with pytest.raises(GraphError):
            ContextualPreference(toy_graph, hop_decay=0.0)
        with pytest.raises(GraphError):
            ContextualPreference(toy_graph, hop_decay=1.5)

    def test_top_per_field_positive(self, toy_graph):
        with pytest.raises(GraphError):
            ContextualPreference(toy_graph, top_per_field=0)

    def test_include_self_bounds(self, toy_graph):
        with pytest.raises(GraphError):
            ContextualPreference(toy_graph, include_self=1.0)


class TestWeights:
    def test_field_cardinality_term_field(self, pref):
        assert pref.field_cardinality(TITLE) == 10

    def test_field_cardinality_table(self, pref):
        assert pref.field_cardinality("papers") == 4

    def test_node_idf_term_positive(self, pref, toy_graph):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "uncertain"))
        assert pref.node_idf(node_id) > 0

    def test_node_idf_tuple_positive(self, pref, toy_graph):
        node_id = toy_graph.tuple_node_id(("papers", 0))
        assert pref.node_idf(node_id) > 0


class TestNeighborhood:
    def test_hop1_is_containing_tuples(self, toy_graph):
        pref = ContextualPreference(toy_graph, hops=1)
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        mass = pref.neighborhood_mass(node_id)
        payloads = {toy_graph.node(n).payload for n in mass}
        assert payloads == {("papers", 0), ("papers", 3)}

    def test_excludes_start(self, pref, toy_graph):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        assert node_id not in pref.neighborhood_mass(node_id)

    def test_deeper_hops_reach_conferences(self, toy_graph):
        pref = ContextualPreference(toy_graph, hops=2)
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        mass = pref.neighborhood_mass(node_id)
        payloads = {toy_graph.node(n).payload for n in mass}
        assert ("conferences", 0) in payloads
        assert ("conferences", 1) in payloads

    def test_nearer_mass_dominates(self, toy_graph):
        pref = ContextualPreference(toy_graph, hops=3, hop_decay=0.5)
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        mass = pref.neighborhood_mass(node_id)
        paper = toy_graph.tuple_node_id(("papers", 0))
        conf = toy_graph.tuple_node_id(("conferences", 0))
        assert mass[paper] > mass[conf]

    def test_isolated_node(self):
        db = build_toy_database()
        db.insert("authors", {"aid": 9, "name": "loner"})
        graph = TATGraph(db, InvertedIndex(db))
        pref = ContextualPreference(graph)
        # the author tuple and its name term form a 2-node island
        node_id = graph.term_node_id(FieldTerm(("authors", "name"), "loner"))
        mass = pref.neighborhood_mass(node_id)
        assert set(mass) == {graph.tuple_node_id(("authors", 9))}


class TestEntriesAndPreference:
    def test_entries_capped_per_field(self, toy_graph):
        pref = ContextualPreference(toy_graph, hops=4, top_per_field=1)
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        entries = pref.context_entries(node_id)
        by_field = {}
        for e in entries:
            by_field[e.field] = by_field.get(e.field, 0) + 1
        assert all(count == 1 for count in by_field.values())

    def test_entry_weight_is_product(self, pref, toy_graph):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        for entry in pref.context_entries(node_id):
            assert entry.weight == pytest.approx(
                entry.field_weight * entry.node_weight
            )

    def test_preference_weights_normalized_shape(self, pref, toy_graph):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        weights = pref.preference_weights(node_id)
        assert weights
        assert all(w > 0 for w in weights.values())

    def test_include_self_adds_start_node(self, toy_graph):
        pref = ContextualPreference(toy_graph, include_self=0.3)
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        weights = pref.preference_weights(node_id)
        assert weights[node_id] == pytest.approx(0.3)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_fallback_to_indicator_when_no_context(self):
        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db))
        pref = ContextualPreference(graph)
        # fabricate: ask for a tuple node with no neighbors
        db2 = build_toy_database()
        db2.insert("authors", {"aid": 9, "name": None})
        graph2 = TATGraph(db2, InvertedIndex(db2))
        pref2 = ContextualPreference(graph2)
        loner = graph2.tuple_node_id(("authors", 9))
        assert pref2.preference_weights(loner) == {loner: 1.0}

    def test_scarce_field_outweighs(self, toy_graph):
        """Conference context nodes get the 1/|F| boost (|F|=2 vs 10)."""
        pref = ContextualPreference(toy_graph, hops=2)
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        entries = {e.node_id: e for e in pref.context_entries(node_id)}
        conf_entry = entries[toy_graph.tuple_node_id(("conferences", 0))]
        # conferences table has 2 rows -> field weight 1/2
        assert conf_entry.field_weight == pytest.approx(0.5)
