"""Hypothesis strategies shared by the property-based tests.

The central one is :func:`hmms` — random, fully-parameterized
:class:`~repro.core.hmm.ReformulationHMM` instances small enough for the
brute-force oracle, used to cross-check Viterbi, top-k Viterbi and A*.
"""

from __future__ import annotations

from typing import List

import numpy as np
from hypothesis import strategies as st

from repro.core.candidates import CandidateState, StateKind
from repro.core.hmm import ReformulationHMM
from repro.index.inverted import FieldTerm

# Adversarial alphabet for store keys: the separator, the escape
# character, whitespace and non-ASCII text must all round-trip.
_KEY_CHARS = st.characters(
    codec="utf-8", exclude_categories=("Cs",)
)
_key_text = st.text(alphabet=_KEY_CHARS, min_size=1, max_size=12)


@st.composite
def field_terms(draw):
    """An arbitrary indexed term: any table/column/text, incl. '|' and '\\'."""
    nasty = st.sampled_from(
        ["|", "\\", "a|b", "a\\|b", "x\\\\", "τέρμα|", "名前", " ", "||"]
    )
    part = st.one_of(_key_text, nasty)
    return FieldTerm((draw(part), draw(part)), draw(part))


@st.composite
def hmms(
    draw,
    max_positions: int = 4,
    max_states: int = 4,
    allow_zeros: bool = True,
):
    """A random small HMM with explicit (possibly zero) factor matrices."""
    m = draw(st.integers(min_value=1, max_value=max_positions))
    sizes = [
        draw(st.integers(min_value=1, max_value=max_states)) for _ in range(m)
    ]
    low = 0.0 if allow_zeros else 0.01
    weight = st.floats(
        min_value=low, max_value=1.0, allow_nan=False, allow_infinity=False
    )

    states: List[List[CandidateState]] = []
    for i, n in enumerate(sizes):
        states.append([
            CandidateState(
                kind=StateKind.SIMILAR,
                node_id=i * max_states + j,
                text=f"t{i}_{j}",
                sim=draw(weight),
            )
            for j in range(n)
        ])

    pi_raw = np.array([draw(weight) for _ in range(sizes[0])])
    if pi_raw.sum() == 0:
        pi_raw[0] = 1.0
    pi = pi_raw / pi_raw.sum()

    emissions = []
    for n in sizes:
        e_raw = np.array([draw(weight) for _ in range(n)])
        if e_raw.sum() == 0:
            e_raw[0] = 1.0
        emissions.append(e_raw / e_raw.sum())

    transitions = []
    for i in range(1, m):
        t = np.array(
            [[draw(weight) for _ in range(sizes[i])] for _ in range(sizes[i - 1])]
        )
        transitions.append(t)

    return ReformulationHMM(
        query=tuple(f"q{i}" for i in range(m)),
        states=states,
        pi=pi,
        emissions=emissions,
        transitions=transitions,
    )
