"""Hypothesis strategies shared by the property-based tests.

The central one is :func:`hmms` — random, fully-parameterized
:class:`~repro.core.hmm.ReformulationHMM` instances small enough for the
brute-force oracle, used to cross-check Viterbi, top-k Viterbi and A*.
"""

from __future__ import annotations

from typing import List

import numpy as np
from hypothesis import strategies as st

from repro.core.candidates import CandidateState, StateKind
from repro.core.hmm import ReformulationHMM
from repro.index.inverted import FieldTerm

# Adversarial alphabet for store keys: the separator, the escape
# character, whitespace and non-ASCII text must all round-trip.
_KEY_CHARS = st.characters(
    codec="utf-8", exclude_categories=("Cs",)
)
_key_text = st.text(alphabet=_KEY_CHARS, min_size=1, max_size=12)


@st.composite
def field_terms(draw):
    """An arbitrary indexed term: any table/column/text, incl. '|' and '\\'."""
    nasty = st.sampled_from(
        ["|", "\\", "a|b", "a\\|b", "x\\\\", "τέρμα|", "名前", " ", "||"]
    )
    part = st.one_of(_key_text, nasty)
    return FieldTerm((draw(part), draw(part)), draw(part))


@st.composite
def hmms(
    draw,
    max_positions: int = 4,
    max_states: int = 4,
    allow_zeros: bool = True,
):
    """A random small HMM with explicit (possibly zero) factor matrices."""
    m = draw(st.integers(min_value=1, max_value=max_positions))
    sizes = [
        draw(st.integers(min_value=1, max_value=max_states)) for _ in range(m)
    ]
    low = 0.0 if allow_zeros else 0.01
    weight = st.floats(
        min_value=low, max_value=1.0, allow_nan=False, allow_infinity=False
    )

    states: List[List[CandidateState]] = []
    for i, n in enumerate(sizes):
        states.append([
            CandidateState(
                kind=StateKind.SIMILAR,
                node_id=i * max_states + j,
                text=f"t{i}_{j}",
                sim=draw(weight),
            )
            for j in range(n)
        ])

    pi_raw = np.array([draw(weight) for _ in range(sizes[0])])
    if pi_raw.sum() == 0:
        pi_raw[0] = 1.0
    pi = pi_raw / pi_raw.sum()

    emissions = []
    for n in sizes:
        e_raw = np.array([draw(weight) for _ in range(n)])
        if e_raw.sum() == 0:
            e_raw[0] = 1.0
        emissions.append(e_raw / e_raw.sum())

    transitions = []
    for i in range(1, m):
        t = np.array(
            [[draw(weight) for _ in range(sizes[i])] for _ in range(sizes[i - 1])]
        )
        transitions.append(t)

    return ReformulationHMM(
        query=tuple(f"q{i}" for i in range(m)),
        states=states,
        pi=pi,
        emissions=emissions,
        transitions=transitions,
    )


# --------------------------------------------------------------------------- #
# Adversarial instances for the decode oracle (tests/decode_oracle.py)
# --------------------------------------------------------------------------- #

#: k values exercised against the oracle; tests additionally probe
#: k > search_space explicitly.
topk_values = st.integers(min_value=1, max_value=12)


def _weight_strategy(profile: str):
    """Per-profile raw weight distributions."""
    positive = st.floats(
        min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False
    )
    if profile == "zero_heavy":
        # Zeros dominate: exercises impossible paths, -inf log lanes and
        # the zero-score tail of the tie-break contract.
        return st.one_of(st.just(0.0), st.just(0.0), positive)
    if profile == "skewed":
        # Magnitudes spread over 12 decades: near-degenerate priorities
        # for A*'s heuristic and heavy truncation pressure for the DP.
        return st.integers(min_value=0, max_value=12).map(lambda e: 10.0 ** -e)
    if profile == "tied_palette":
        # A tiny value palette manufactures exact score collisions from
        # *different* factor multisets (0.5·0.5 == 0.25·1.0), the hard
        # case for deterministic tie-breaking.
        return st.sampled_from([0.0, 0.25, 0.5, 1.0])
    return st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    )


@st.composite
def hmm_instances(
    draw,
    max_positions: int = 4,
    max_states: int = 5,
):
    """Adversarial HMMs for the differential decode oracle.

    On top of :func:`hmms` this draws weight *profiles* (zero-heavy,
    magnitude-skewed, tied palettes), biases position sizes toward the
    degenerate single-candidate case, covers 1-keyword queries, and can
    *twin* a position's first two states — identical raw π/emission
    weights and identical transition rows/columns — so that twin paths
    have elementwise-identical factor sequences and therefore collide
    exactly in both probability and log space.
    """
    profile = draw(
        st.sampled_from(["uniform", "zero_heavy", "skewed", "tied_palette"])
    )
    weight = _weight_strategy(profile)
    m = draw(st.integers(min_value=1, max_value=max_positions))
    one_biased = st.one_of(
        st.just(1), st.integers(min_value=1, max_value=max_states)
    )
    sizes = [draw(one_biased) for _ in range(m)]
    # Twin the first two states of these positions (needs >= 2 states).
    twinned = [
        sizes[i] >= 2 and draw(st.booleans()) for i in range(m)
    ]

    states: List[List[CandidateState]] = []
    for i, n in enumerate(sizes):
        states.append([
            CandidateState(
                kind=StateKind.SIMILAR,
                node_id=i * max_states + j,
                text=f"t{i}_{j}",
                sim=1.0,
            )
            for j in range(n)
        ])

    pi_raw = np.array([draw(weight) for _ in range(sizes[0])], dtype=np.float64)
    emissions_raw = [
        np.array([draw(weight) for _ in range(n)], dtype=np.float64)
        for n in sizes
    ]
    transitions = [
        np.array(
            [[draw(weight) for _ in range(sizes[i])] for _ in range(sizes[i - 1])],
            dtype=np.float64,
        )
        for i in range(1, m)
    ]

    # Apply the twinning *before* normalization: equal numerators over a
    # shared divisor stay equal, so the twins survive as exact ties.
    for i, twin in enumerate(twinned):
        if not twin:
            continue
        if i == 0:
            pi_raw[1] = pi_raw[0]
        emissions_raw[i][1] = emissions_raw[i][0]
        if i > 0:
            transitions[i - 1][:, 1] = transitions[i - 1][:, 0]
        if i < m - 1:
            transitions[i][1, :] = transitions[i][0, :]

    if pi_raw.sum() == 0:
        pi_raw[:] = 1.0
    pi = pi_raw / pi_raw.sum()
    emissions = []
    for e_raw in emissions_raw:
        if e_raw.sum() == 0:
            e_raw[:] = 1.0
        emissions.append(e_raw / e_raw.sum())

    return ReformulationHMM(
        query=tuple(f"q{i}" for i in range(m)),
        states=states,
        pi=pi,
        emissions=emissions,
        transitions=transitions,
    )
