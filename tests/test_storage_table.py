"""Unit tests for repro.storage.table."""

import pytest

from repro.errors import DuplicateKeyError, IntegrityError, UnknownColumnError
from repro.storage.schema import Column, TableSchema
from repro.storage.table import Table


@pytest.fixture()
def table() -> Table:
    schema = TableSchema(
        "papers",
        [
            Column("pid", "int", nullable=False),
            Column("title", "text"),
            Column("cid", "int"),
        ],
        primary_key="pid",
    )
    return Table(schema)


@pytest.fixture()
def filled(table: Table) -> Table:
    table.insert_many([
        {"pid": 1, "title": "alpha", "cid": 10},
        {"pid": 2, "title": "beta", "cid": 10},
        {"pid": 3, "title": "gamma", "cid": 20},
    ])
    return table


class TestInsert:
    def test_insert_returns_pk(self, table):
        assert table.insert({"pid": 7, "title": "x", "cid": None}) == 7

    def test_len_grows(self, filled):
        assert len(filled) == 3

    def test_duplicate_pk_rejected(self, filled):
        with pytest.raises(DuplicateKeyError):
            filled.insert({"pid": 1, "title": "dup", "cid": None})

    def test_missing_columns_become_none(self, table):
        table.insert({"pid": 1})
        assert table.get(1)["title"] is None

    def test_validation_applied(self, table):
        with pytest.raises(Exception):
            table.insert({"pid": "not-an-int", "title": "x"})

    def test_insert_many_count(self, table):
        n = table.insert_many([{"pid": i} for i in range(5)])
        assert n == 5 and len(table) == 5


class TestLookup:
    def test_contains(self, filled):
        assert 1 in filled
        assert 99 not in filled

    def test_get(self, filled):
        assert filled.get(2)["title"] == "beta"

    def test_get_missing_raises(self, filled):
        with pytest.raises(IntegrityError):
            filled.get(99)

    def test_get_or_none(self, filled):
        assert filled.get_or_none(99) is None
        assert filled.get_or_none(1)["title"] == "alpha"

    def test_get_returns_fresh_dict(self, filled):
        row = filled.get(1)
        row["title"] = "mutated"
        assert filled.get(1)["title"] == "alpha"

    def test_scan_order(self, filled):
        assert [r["pid"] for r in filled.scan()] == [1, 2, 3]

    def test_primary_keys(self, filled):
        assert sorted(filled.primary_keys()) == [1, 2, 3]

    def test_value_of(self, filled):
        assert filled.value_of(3, "title") == "gamma"

    def test_value_of_unknown_column(self, filled):
        with pytest.raises(UnknownColumnError):
            filled.value_of(3, "nope")

    def test_value_of_missing_pk(self, filled):
        with pytest.raises(IntegrityError):
            filled.value_of(99, "title")


class TestSecondaryIndex:
    def test_find_by_column(self, filled):
        rows = filled.find("cid", 10)
        assert {r["pid"] for r in rows} == {1, 2}

    def test_find_no_match(self, filled):
        assert filled.find("cid", 999) == []

    def test_find_unknown_column(self, filled):
        with pytest.raises(UnknownColumnError):
            filled.find("nope", 1)

    def test_index_stays_fresh_after_insert(self, filled):
        filled.find("cid", 10)  # builds the lazy index
        filled.insert({"pid": 4, "title": "delta", "cid": 10})
        assert {r["pid"] for r in filled.find("cid", 10)} == {1, 2, 4}

    def test_find_none_value(self, table):
        table.insert({"pid": 1, "title": None, "cid": None})
        assert [r["pid"] for r in table.find("cid", None)] == [1]
