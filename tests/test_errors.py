"""Tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or (
                    obj is errors.ReproError
                ), name

    def test_storage_family(self):
        assert issubclass(errors.UnknownTableError, errors.SchemaError)
        assert issubclass(errors.UnknownColumnError, errors.SchemaError)
        assert issubclass(errors.DuplicateKeyError, errors.IntegrityError)

    def test_graph_family(self):
        assert issubclass(errors.UnknownNodeError, errors.GraphError)
        assert issubclass(errors.ConvergenceError, errors.GraphError)

    def test_reformulation_family(self):
        assert issubclass(
            errors.EmptyCandidateError, errors.ReformulationError
        )

    def test_single_catch_all(self):
        """A caller can guard the whole library with one except clause."""
        with pytest.raises(errors.ReproError):
            raise errors.DuplicateKeyError("dup")
        with pytest.raises(errors.ReproError):
            raise errors.ConvergenceError("no converge")
        with pytest.raises(errors.ReproError):
            raise errors.EmptyCandidateError("empty")
