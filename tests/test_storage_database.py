"""Unit tests for repro.storage.database."""

import pytest

from repro.errors import IntegrityError, UnknownTableError
from repro.storage.database import Database
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)

from tests.conftest import build_toy_database, toy_schema


@pytest.fixture()
def db() -> Database:
    return build_toy_database()


class TestBasics:
    def test_table_names(self, db):
        assert set(db.table_names) == {
            "conferences", "authors", "papers", "writes",
        }

    def test_total_tuples(self, db):
        assert len(db) == 2 + 3 + 4 + 4

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.table("nope")

    def test_describe_mentions_tables(self, db):
        text = db.describe()
        assert "papers" in text and "FK" in text


class TestForeignKeys:
    def test_insert_with_valid_fk(self, db):
        db.insert("papers", {"pid": 9, "title": "new", "cid": 0, "year": 2012})

    def test_insert_with_dangling_fk_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("papers", {"pid": 9, "title": "new", "cid": 99, "year": 1})

    def test_insert_with_null_fk_allowed(self, db):
        db.insert("papers", {"pid": 9, "title": "new", "cid": None, "year": 1})

    def test_unenforced_mode_defers_check(self):
        db = Database(toy_schema(), enforce_fk=False)
        db.insert("papers", {"pid": 0, "title": "x", "cid": 5, "year": 1})
        with pytest.raises(IntegrityError):
            db.check_integrity()

    def test_unenforced_then_fixed_passes(self):
        db = Database(toy_schema(), enforce_fk=False)
        db.insert("papers", {"pid": 0, "title": "x", "cid": 5, "year": 1})
        db.insert("conferences", {"cid": 5, "name": "fixit"})
        db.check_integrity()

    def test_check_integrity_on_valid_db(self, db):
        db.check_integrity()


class TestGraphMaterial:
    def test_tuple_refs_cover_everything(self, db):
        refs = list(db.tuple_refs())
        assert len(refs) == len(db)
        assert ("papers", 0) in refs and ("writes", 3) in refs

    def test_fk_edges_count(self, db):
        # 4 papers->conference + 4 writes->author + 4 writes->paper
        assert len(list(db.fk_edges())) == 12

    def test_fk_edges_direction(self, db):
        edges = set(db.fk_edges())
        assert (("papers", 0), ("conferences", 0)) in edges
        assert (("writes", 0), ("authors", 0)) in edges

    def test_fk_edges_skip_null(self, db):
        db.insert("papers", {"pid": 9, "title": "x", "cid": None, "year": 1})
        edges = [e for e in db.fk_edges() if e[0] == ("papers", 9)]
        assert edges == []

    def test_fetch(self, db):
        assert db.fetch(("authors", 1))["name"] == "bob"

    def test_fetch_or_none_missing_row(self, db):
        assert db.fetch_or_none(("authors", 99)) is None

    def test_fetch_or_none_missing_table(self, db):
        assert db.fetch_or_none(("nope", 1)) is None

    def test_insert_returns_ref(self, db):
        ref = db.insert("authors", {"aid": 9, "name": "zed"})
        assert ref == ("authors", 9)

    def test_insert_many(self, db):
        n = db.insert_many("authors", [
            {"aid": 10, "name": "x1"}, {"aid": 11, "name": "x2"},
        ])
        assert n == 2 and ("authors", 11) in list(db.tuple_refs())
