"""Unit tests for repro.graph.adjacency."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.adjacency import AdjacencyBuilder


def build_triangle():
    builder = AdjacencyBuilder()
    builder.add_edge(0, 1, 1.0)
    builder.add_edge(1, 2, 2.0)
    builder.add_edge(0, 2, 3.0)
    return builder.freeze(3)


class TestBuilder:
    def test_edge_count(self):
        adj = build_triangle()
        assert adj.n_edges == 3
        assert adj.n_nodes == 3

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            AdjacencyBuilder().add_edge(1, 1)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(GraphError):
            AdjacencyBuilder().add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            AdjacencyBuilder().add_edge(0, 1, -1.0)

    def test_duplicate_edges_accumulate(self):
        builder = AdjacencyBuilder()
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(1, 0, 2.0)  # same undirected edge
        adj = builder.freeze(2)
        assert adj.n_edges == 1
        assert adj.degree(0) == 3.0

    def test_out_of_range_edge(self):
        builder = AdjacencyBuilder()
        builder.add_edge(0, 5)
        with pytest.raises(GraphError):
            builder.freeze(3)

    def test_empty_graph(self):
        adj = AdjacencyBuilder().freeze(4)
        assert adj.n_edges == 0
        assert adj.degree(2) == 0.0

    def test_len_counts_accumulated_edges(self):
        builder = AdjacencyBuilder()
        builder.add_edge(0, 1)
        builder.add_edge(1, 0)
        assert len(builder) == 1


class TestAdjacency:
    def test_symmetry(self):
        adj = build_triangle()
        m = adj.matrix.toarray()
        assert np.allclose(m, m.T)

    def test_degree(self):
        adj = build_triangle()
        assert adj.degree(0) == 4.0  # 1 + 3
        assert adj.degree(1) == 3.0
        assert adj.degree(2) == 5.0

    def test_neighbors(self):
        adj = build_triangle()
        nbrs = dict(adj.neighbors(0))
        assert nbrs == {1: 1.0, 2: 3.0}

    def test_neighbor_ids(self):
        adj = build_triangle()
        assert set(adj.neighbor_ids(1)) == {0, 2}

    def test_isolated_node_has_no_neighbors(self):
        builder = AdjacencyBuilder()
        builder.add_edge(0, 1)
        adj = builder.freeze(3)
        assert list(adj.neighbors(2)) == []


class TestTransition:
    def test_columns_sum_to_one(self):
        adj = build_triangle()
        t = adj.transition_matrix().toarray()
        assert np.allclose(t.sum(axis=0), 1.0)

    def test_isolated_column_is_zero(self):
        builder = AdjacencyBuilder()
        builder.add_edge(0, 1)
        adj = builder.freeze(3)
        t = adj.transition_matrix().toarray()
        assert t[:, 2].sum() == 0.0

    def test_weight_proportional(self):
        adj = build_triangle()
        t = adj.transition_matrix().toarray()
        # from node 0 (deg 4): to 1 with 1/4, to 2 with 3/4
        assert t[1, 0] == pytest.approx(0.25)
        assert t[2, 0] == pytest.approx(0.75)

    def test_cached(self):
        adj = build_triangle()
        assert adj.transition_matrix() is adj.transition_matrix()

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 9),
                st.integers(0, 9),
                st.floats(0.1, 10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_columns_stochastic(self, edges):
        builder = AdjacencyBuilder()
        added = 0
        for u, v, w in edges:
            if u != v:
                builder.add_edge(u, v, w)
                added += 1
        if added == 0:
            return
        adj = builder.freeze(10)
        t = adj.transition_matrix().toarray()
        sums = t.sum(axis=0)
        for j in range(10):
            if adj.degree(j) > 0:
                assert sums[j] == pytest.approx(1.0)
            else:
                assert sums[j] == 0.0
