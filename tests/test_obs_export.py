"""Unit tests for repro.obs.export (JSON, Prometheus text, span trees)."""

import json

from repro.obs.export import (
    escape_help,
    escape_label_value,
    format_value,
    prometheus_from_dict,
    registry_to_dict,
    registry_to_json,
    registry_to_prometheus,
    render_span_tree,
    span_to_dict,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events_total", "Events seen").inc(7)
    registry.gauge("staleness", "Pending mutations").set(2.5)
    hist = registry.histogram("latency_seconds", "Latency", buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(10.0)
    return registry


class TestJsonExport:
    def test_snapshot_shape(self):
        snapshot = registry_to_dict(build_registry())
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        assert by_name["events_total"]["type"] == "counter"
        assert by_name["events_total"]["value"] == 7.0
        assert by_name["staleness"]["value"] == 2.5
        hist = by_name["latency_seconds"]
        assert hist["count"] == 3
        assert hist["sum"] == 10.55
        assert hist["buckets"] == [[0.1, 1], [1.0, 2], ["+Inf", 3]]

    def test_json_roundtrips(self):
        text = registry_to_json(build_registry())
        snapshot = json.loads(text)
        assert {m["name"] for m in snapshot["metrics"]} == {
            "events_total", "staleness", "latency_seconds",
        }


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_escapes_quote_too(self):
        assert escape_label_value('say "hi"\\\n') == 'say \\"hi\\"\\\\\\n'

    def test_format_value_integers_unpadded(self):
        assert format_value(3.0) == "3"
        assert format_value(3.5) == "3.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestPrometheusText:
    def test_headers_and_series(self):
        text = registry_to_prometheus(build_registry())
        lines = text.splitlines()
        assert "# HELP events_total Events seen" in lines
        assert "# TYPE events_total counter" in lines
        assert "events_total 7" in lines
        assert "# TYPE staleness gauge" in lines
        assert "staleness 2.5" in lines

    def test_histogram_buckets_cumulative_with_inf(self):
        lines = registry_to_prometheus(build_registry()).splitlines()
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "latency_seconds_sum 10.55" in lines
        assert "latency_seconds_count 3" in lines

    def test_labeled_series_share_one_header(self):
        registry = MetricsRegistry()
        registry.counter("lookups_total", "Lookups", outcome="hit").inc(2)
        registry.counter("lookups_total", "Lookups", outcome="miss").inc()
        text = registry_to_prometheus(registry)
        assert text.count("# TYPE lookups_total counter") == 1
        assert 'lookups_total{outcome="hit"} 2' in text
        assert 'lookups_total{outcome="miss"} 1' in text

    def test_label_values_escaped_in_output(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", path='a"b\\c').inc()
        text = registry_to_prometheus(registry)
        assert 'c_total{path="a\\"b\\\\c"} 1' in text

    def test_help_newline_escaped_in_output(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two").inc()
        text = registry_to_prometheus(registry)
        assert "# HELP c_total line one\\nline two" in text

    def test_empty_registry_exports_empty(self):
        assert registry_to_prometheus(MetricsRegistry()) == ""

    def test_from_dict_roundtrip_through_json(self):
        # What `repro stats --from-json` does: dump, reload, re-emit.
        direct = registry_to_prometheus(build_registry())
        reloaded = prometheus_from_dict(
            json.loads(registry_to_json(build_registry()))
        )
        assert direct == reloaded

    def test_ends_with_newline_when_nonempty(self):
        assert registry_to_prometheus(build_registry()).endswith("\n")


class TestSpanRendering:
    def build_tree(self):
        tracer = Tracer()
        with tracer.span("root", k=5) as root:
            with tracer.span("child") as child:
                child.set_attribute("n", 2)
        return root

    def test_render_indents_children(self):
        text = render_span_tree(self.build_tree())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "[k=5]" in lines[0]
        assert "[n=2]" in lines[1]

    def test_render_honors_initial_indent(self):
        text = render_span_tree(self.build_tree(), indent=1)
        assert text.splitlines()[0].startswith("  root")

    def test_span_to_dict(self):
        payload = span_to_dict(self.build_tree())
        assert payload["name"] == "root"
        assert payload["attributes"] == {"k": 5}
        assert payload["duration_seconds"] >= 0.0
        assert payload["children"][0]["name"] == "child"
        json.dumps(payload)  # must be JSON-able
