"""Unit tests for repro.obs.export (JSON, Prometheus text, span trees)."""

import json
import threading

from repro.obs.export import (
    escape_help,
    escape_label_value,
    format_value,
    merge_snapshots,
    prometheus_from_dict,
    registry_to_dict,
    registry_to_json,
    registry_to_prometheus,
    render_span_tree,
    render_trace_record,
    span_from_dict,
    span_to_dict,
)
from repro.obs.flight import merge_trace_snapshots
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events_total", "Events seen").inc(7)
    registry.gauge("staleness", "Pending mutations").set(2.5)
    hist = registry.histogram("latency_seconds", "Latency", buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(10.0)
    return registry


class TestJsonExport:
    def test_snapshot_shape(self):
        snapshot = registry_to_dict(build_registry())
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        assert by_name["events_total"]["type"] == "counter"
        assert by_name["events_total"]["value"] == 7.0
        assert by_name["staleness"]["value"] == 2.5
        hist = by_name["latency_seconds"]
        assert hist["count"] == 3
        assert hist["sum"] == 10.55
        assert hist["buckets"] == [[0.1, 1], [1.0, 2], ["+Inf", 3]]

    def test_json_roundtrips(self):
        text = registry_to_json(build_registry())
        snapshot = json.loads(text)
        assert {m["name"] for m in snapshot["metrics"]} == {
            "events_total", "staleness", "latency_seconds",
        }


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_escapes_quote_too(self):
        assert escape_label_value('say "hi"\\\n') == 'say \\"hi\\"\\\\\\n'

    def test_format_value_integers_unpadded(self):
        assert format_value(3.0) == "3"
        assert format_value(3.5) == "3.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestPrometheusText:
    def test_headers_and_series(self):
        text = registry_to_prometheus(build_registry())
        lines = text.splitlines()
        assert "# HELP events_total Events seen" in lines
        assert "# TYPE events_total counter" in lines
        assert "events_total 7" in lines
        assert "# TYPE staleness gauge" in lines
        assert "staleness 2.5" in lines

    def test_histogram_buckets_cumulative_with_inf(self):
        lines = registry_to_prometheus(build_registry()).splitlines()
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "latency_seconds_sum 10.55" in lines
        assert "latency_seconds_count 3" in lines

    def test_labeled_series_share_one_header(self):
        registry = MetricsRegistry()
        registry.counter("lookups_total", "Lookups", outcome="hit").inc(2)
        registry.counter("lookups_total", "Lookups", outcome="miss").inc()
        text = registry_to_prometheus(registry)
        assert text.count("# TYPE lookups_total counter") == 1
        assert 'lookups_total{outcome="hit"} 2' in text
        assert 'lookups_total{outcome="miss"} 1' in text

    def test_label_values_escaped_in_output(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", path='a"b\\c').inc()
        text = registry_to_prometheus(registry)
        assert 'c_total{path="a\\"b\\\\c"} 1' in text

    def test_help_newline_escaped_in_output(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline two").inc()
        text = registry_to_prometheus(registry)
        assert "# HELP c_total line one\\nline two" in text

    def test_empty_registry_exports_empty(self):
        assert registry_to_prometheus(MetricsRegistry()) == ""

    def test_from_dict_roundtrip_through_json(self):
        # What `repro stats --from-json` does: dump, reload, re-emit.
        direct = registry_to_prometheus(build_registry())
        reloaded = prometheus_from_dict(
            json.loads(registry_to_json(build_registry()))
        )
        assert direct == reloaded

    def test_ends_with_newline_when_nonempty(self):
        assert registry_to_prometheus(build_registry()).endswith("\n")


class TestSpanRendering:
    def build_tree(self):
        tracer = Tracer()
        with tracer.span("root", k=5) as root:
            with tracer.span("child") as child:
                child.set_attribute("n", 2)
        return root

    def test_render_indents_children(self):
        text = render_span_tree(self.build_tree())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "[k=5]" in lines[0]
        assert "[n=2]" in lines[1]

    def test_render_honors_initial_indent(self):
        text = render_span_tree(self.build_tree(), indent=1)
        assert text.splitlines()[0].startswith("  root")

    def test_span_to_dict(self):
        payload = span_to_dict(self.build_tree())
        assert payload["name"] == "root"
        assert payload["attributes"] == {"k": 5}
        assert payload["duration_seconds"] >= 0.0
        assert payload["children"][0]["name"] == "child"
        json.dumps(payload)  # must be JSON-able

    def test_span_from_dict_roundtrips_render(self):
        payload = span_to_dict(self.build_tree())
        rebuilt = span_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.name == "root"
        assert rebuilt.duration == payload["duration_seconds"]
        assert rebuilt.children[0].attributes == {"n": 2}
        text = render_span_tree(rebuilt)
        assert text.splitlines()[0].startswith("root")


class TestExemplars:
    def test_export_carries_exemplars(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "", buckets=[0.1, 1.0])
        hist.observe(0.05, exemplar="fast-1")
        hist.observe(0.07, exemplar="fast-2")  # same bucket: last wins
        hist.observe(5.0, exemplar="slow-1")
        hist.observe(0.5)  # no exemplar: bucket stays empty
        entry = registry_to_dict(registry)["metrics"][0]
        assert entry["exemplars"] == [
            [0.1, 0.07, "fast-2"],
            ["+Inf", 5.0, "slow-1"],
        ]

    def test_no_exemplars_key_when_none_recorded(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "", buckets=[1.0]).observe(0.5)
        entry = registry_to_dict(registry)["metrics"][0]
        assert "exemplars" not in entry

    def test_merge_keeps_one_exemplar_per_bound(self):
        def snap(trace_id):
            registry = MetricsRegistry()
            registry.histogram(
                "lat_seconds", "", buckets=[1.0]
            ).observe(0.5, exemplar=trace_id)
            return registry_to_dict(registry)

        merged = merge_snapshots([snap("worker-a"), snap("worker-b")])
        entry = merged["metrics"][0]
        # later snapshot wins the shared bound; counts still sum
        assert entry["exemplars"] == [[1.0, 0.5, "worker-b"]]
        assert entry["count"] == 2


class TestMergeSnapshots:
    def test_mismatched_histogram_bounds_union(self):
        """Two workers whose histograms were registered with different
        bucket layouts must still merge: the union of bounds, counts
        summed where bounds coincide."""
        a = MetricsRegistry()
        a.histogram("lat_seconds", "Latency", buckets=[0.1, 1.0]).observe(0.05)
        b = MetricsRegistry()
        hb = b.histogram("lat_seconds", "Latency", buckets=[0.5, 1.0])
        hb.observe(0.3)
        hb.observe(2.0)
        merged = merge_snapshots([registry_to_dict(a), registry_to_dict(b)])
        entry = {m["name"]: m for m in merged["metrics"]}["lat_seconds"]
        assert entry["count"] == 3
        bounds = [bound for bound, _ in entry["buckets"]]
        assert bounds == [0.1, 0.5, 1.0, "+Inf"]
        by_bound = dict(entry["buckets"])
        assert by_bound[0.1] == 1     # only worker a
        assert by_bound[0.5] == 1     # only worker b
        assert by_bound[1.0] == 2     # 1 (a) + 1 (b), coincident bound
        assert by_bound["+Inf"] == 3

    def test_counters_sum_and_gauges_sum(self):
        a = MetricsRegistry()
        a.counter("req_total", "", route="/x").inc(2)
        a.gauge("inflight").set(1)
        b = MetricsRegistry()
        b.counter("req_total", "", route="/x").inc(3)
        b.gauge("inflight").set(4)
        merged = merge_snapshots([registry_to_dict(a), registry_to_dict(b)])
        by_name = {m["name"]: m for m in merged["metrics"]}
        assert by_name["req_total"]["value"] == 5.0
        assert by_name["inflight"]["value"] == 5.0

    def test_concurrent_flushes_converge(self):
        """Many workers exporting while their registries keep moving:
        each export is internally consistent and the merge of the final
        snapshots equals the true totals (satellite: multi-worker
        aggregation under concurrent flushes)."""
        registries = [MetricsRegistry() for _ in range(4)]
        stop = threading.Event()
        mid_flight_merges = []

        def writer(registry):
            while not stop.is_set():
                registry.counter("events_total").inc()
                registry.histogram(
                    "lat_seconds", "", buckets=[0.1, 1.0]
                ).observe(0.05)

        def flusher():
            while not stop.is_set():
                mid_flight_merges.append(
                    merge_snapshots(
                        [registry_to_dict(r) for r in registries]
                    )
                )

        threads = [
            threading.Thread(target=writer, args=(r,)) for r in registries
        ] + [threading.Thread(target=flusher)]
        for t in threads:
            t.start()
        import time as _time
        _time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        final = merge_snapshots([registry_to_dict(r) for r in registries])
        by_name = {m["name"]: m for m in final["metrics"]}
        true_total = sum(
            r.get("events_total").value for r in registries
        )
        assert by_name["events_total"]["value"] == true_total
        hist = by_name["lat_seconds"]
        assert dict(hist["buckets"])["+Inf"] == hist["count"]
        # every mid-flight merge was well-formed (monotone cumulative
        # buckets, count == +Inf bucket)
        for merged in mid_flight_merges:
            entry = {m["name"]: m for m in merged["metrics"]}.get(
                "lat_seconds"
            )
            if entry is None:
                continue
            counts = [count for _, count in entry["buckets"]]
            assert counts == sorted(counts)
            assert counts[-1] == entry["count"]


class TestMergeTraceSnapshots:
    def make_record(self, trace_id, ts):
        return {"trace_id": trace_id, "ts": ts, "duration_s": 0.01}

    def test_merges_and_sorts_across_workers(self):
        merged = merge_trace_snapshots([
            {"worker": 1, "traces": [self.make_record("b", 2.0)]},
            {"worker": 0, "traces": [
                self.make_record("a", 1.0), self.make_record("c", 3.0),
            ]},
        ])
        assert merged["workers"] == [0, 1]
        assert merged["count"] == 3
        assert [r["trace_id"] for r in merged["traces"]] == ["a", "b", "c"]

    def test_limit_keeps_newest(self):
        merged = merge_trace_snapshots(
            [{"worker": 0, "traces": [
                self.make_record(str(i), float(i)) for i in range(5)
            ]}],
            limit=2,
        )
        assert [r["trace_id"] for r in merged["traces"]] == ["3", "4"]

    def test_empty_input(self):
        merged = merge_trace_snapshots([])
        assert merged == {"count": 0, "workers": [], "traces": []}


class TestRenderTraceRecord:
    def test_header_stages_and_flags(self):
        record = {
            "trace_id": "abc123",
            "verb": "POST",
            "route": "/reformulate",
            "status": 200,
            "duration_s": 0.75,
            "worker": 2,
            "slow": True,
            "degraded": True,
            "degraded_mode": "cached",
            "cache": "hit",
            "stages": {"queue_wait": 0.2, "decode": 0.5},
        }
        text = render_trace_record(record)
        lines = text.splitlines()
        assert "trace abc123" in lines[0]
        assert "worker=2" in lines[0]
        assert "[slow,degraded]" in lines[0]
        assert "queue_wait=200.00ms" in lines[1]
        assert any("degraded_mode: cached" in line for line in lines)
        assert any("cache: hit" in line for line in lines)

    def test_span_tree_rendered_when_present(self):
        tracer = Tracer()
        with tracer.span("http.request") as root:
            with tracer.span("decode"):
                pass
        record = {
            "trace_id": "t",
            "duration_s": 0.001,
            "span_tree": span_to_dict(root),
        }
        text = render_trace_record(record)
        assert "http.request" in text
        assert "    decode" in text
