"""Unit tests for repro.index.phrases."""

import pytest

from repro.errors import IndexError_
from repro.index.analyzer import Analyzer
from repro.index.phrases import (
    PhraseAnalyzer,
    PhraseModel,
    learn_phrases_from_database,
)

#: A corpus where "association rule" is a strong collocation and
#: "data mining" a weaker one; "the" is filtered by the analyzer upstream.
CORPUS = (
    [["association", "rule", "mining"]] * 6
    + [["association", "rule", "discovery"]] * 4
    + [["rule", "based", "systems"]] * 3
    + [["association", "networks"]] * 3
    + [["frequent", "itemset", "mining"]] * 5
)


@pytest.fixture()
def model() -> PhraseModel:
    return PhraseModel(min_count=3, min_score=2.0).learn(CORPUS)


class TestLearning:
    def test_requires_learn(self):
        with pytest.raises(IndexError_):
            PhraseModel().phrases

    def test_accepts_strong_collocation(self, model):
        assert model.is_phrase("association", "rule")

    def test_rejects_rare_pair_under_strict_support(self):
        strict = PhraseModel(min_count=5, min_score=2.0).learn(CORPUS)
        assert not strict.is_phrase("rule", "discovery")  # count 4 < 5
        assert strict.is_phrase("association", "rule")    # count 10

    def test_rejects_low_lift_pair(self):
        # lift threshold high enough that only extreme collocations pass
        picky = PhraseModel(min_count=3, min_score=10.0).learn(CORPUS)
        assert picky.is_phrase("based", "systems")       # lift 13.3
        assert not picky.is_phrase("association", "rule")  # lift 3.2

    def test_min_count_filters(self):
        model = PhraseModel(min_count=100, min_score=0.1).learn(CORPUS)
        assert len(model) == 0

    def test_phrases_sorted_by_count(self, model):
        counts = [p.count for p in model.phrases]
        assert counts == sorted(counts, reverse=True)

    def test_validation(self):
        with pytest.raises(IndexError_):
            PhraseModel(min_count=0)
        with pytest.raises(IndexError_):
            PhraseModel(min_score=0)

    def test_phrase_text(self, model):
        stats = next(
            p for p in model.phrases if p.bigram == ("association", "rule")
        )
        assert stats.text == "association rule"


class TestMerge:
    def test_merges_phrase(self, model):
        assert model.merge(["association", "rule", "mining"]) == [
            "association rule", "mining",
        ]

    def test_non_overlapping_greedy(self, model):
        # even if (rule, mining) were a phrase, the left merge wins
        tokens = ["association", "rule", "mining"]
        merged = model.merge(tokens)
        assert merged[0] == "association rule"

    def test_untouched_sequence(self, model):
        assert model.merge(["frequent", "systems"]) == [
            "frequent", "systems",
        ]

    def test_empty(self, model):
        assert model.merge([]) == []

    def test_single_token(self, model):
        assert model.merge(["rule"]) == ["rule"]


class TestPhraseAnalyzer:
    def test_tokenize_merges(self, model):
        analyzer = PhraseAnalyzer(model)
        assert analyzer.tokenize("Association rule mining") == [
            "association rule", "mining",
        ]

    def test_atomic_fields_untouched(self, model):
        analyzer = PhraseAnalyzer(model)
        assert analyzer.analyze("Association Rule", atomic=True) == [
            "association rule"
        ]

    def test_stopwords_removed_before_merge(self, model):
        analyzer = PhraseAnalyzer(model)
        # "the" disappears, making the pair adjacent
        assert analyzer.tokenize("association the rule") == [
            "association rule"
        ]


class TestDatabaseLearning:
    def test_learn_from_database(self):
        from repro.storage.database import Database
        from tests.conftest import toy_schema

        db = Database(toy_schema())
        db.insert("conferences", {"cid": 0, "name": "vldb"})
        for pid in range(4):
            db.insert("papers", {
                "pid": pid,
                "title": "association rule mining advances",
                "cid": 0,
                "year": 2000 + pid,
            })
        model = learn_phrases_from_database(db, min_count=3, min_score=1.5)
        assert model.is_phrase("association", "rule")

    def test_phrase_terms_become_index_nodes(self):
        """End to end: phrase-aware index + TAT graph node."""
        from repro.graph.tat import TATGraph
        from repro.index.inverted import FieldTerm, InvertedIndex
        from repro.storage.database import Database
        from tests.conftest import toy_schema

        db = Database(toy_schema())
        db.insert("conferences", {"cid": 0, "name": "vldb"})
        for pid in range(4):
            db.insert("papers", {
                "pid": pid,
                "title": "association rule mining advances",
                "cid": 0,
                "year": 2000,
            })
        model = learn_phrases_from_database(db, min_count=3, min_score=1.5)
        index = InvertedIndex(db, analyzer=PhraseAnalyzer(model)).build()
        phrase_term = FieldTerm(("papers", "title"), "association rule")
        assert index.df(phrase_term) == 4
        graph = TATGraph(db, index)
        assert graph.term_node_id(phrase_term) >= 0
