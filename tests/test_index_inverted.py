"""Unit tests for repro.index.inverted against the hand-built toy corpus.

Toy titles:
  p0 "probabilistic query answering"   (vldb)
  p1 "uncertain data management"       (vldb)
  p2 "frequent pattern mining"         (icdm)
  p3 "probabilistic pattern discovery" (icdm)
"""

import math

import pytest

from repro.errors import IndexError_
from repro.index.inverted import FieldTerm, InvertedIndex

from tests.conftest import build_toy_database

TITLE = ("papers", "title")
CONF = ("conferences", "name")
AUTHOR = ("authors", "name")


class TestBuild:
    def test_requires_build(self):
        index = InvertedIndex(build_toy_database())
        with pytest.raises(IndexError_):
            index.postings(FieldTerm(TITLE, "probabilistic"))

    def test_build_idempotent(self, toy_db):
        index = InvertedIndex(toy_db).build().build()
        assert index.doc_count == 2 + 3 + 4  # confs + authors + papers

    def test_doc_count_excludes_textless_tables(self, toy_index):
        # writes has no text fields and contributes no documents
        assert toy_index.doc_count == 9

    def test_vocabulary_size(self, toy_index):
        # 10 distinct title words + 2 conference names + 3 author names
        assert toy_index.vocabulary_size() == 15

    def test_fields(self, toy_index):
        assert set(toy_index.fields()) == {TITLE, CONF, AUTHOR}


class TestPostings:
    def test_postings_of_shared_term(self, toy_index):
        postings = toy_index.postings(FieldTerm(TITLE, "probabilistic"))
        assert {p.ref for p in postings} == {("papers", 0), ("papers", 3)}

    def test_tf_recorded(self, toy_index):
        postings = toy_index.postings(FieldTerm(TITLE, "pattern"))
        assert all(p.tf == 1 for p in postings)

    def test_unseen_term_empty(self, toy_index):
        assert toy_index.postings(FieldTerm(TITLE, "nonexistent")) == []

    def test_field_labels_distinguish(self, toy_index):
        # "vldb" exists as conference name, not as title word
        assert toy_index.postings(FieldTerm(CONF, "vldb"))
        assert toy_index.postings(FieldTerm(TITLE, "vldb")) == []

    def test_atomic_field_whole_value(self, toy_db):
        db = build_toy_database()
        db.insert("authors", {"aid": 9, "name": "jiawei han"})
        index = InvertedIndex(db).build()
        assert index.postings(FieldTerm(AUTHOR, "jiawei han"))
        assert index.postings(FieldTerm(AUTHOR, "jiawei")) == []

    def test_repeated_word_tf(self):
        db = build_toy_database()
        db.insert("papers", {
            "pid": 9, "title": "query query rewriting", "cid": 0, "year": 1,
        })
        index = InvertedIndex(db).build()
        posting = [
            p for p in index.postings(FieldTerm(TITLE, "query"))
            if p.ref == ("papers", 9)
        ]
        assert posting[0].tf == 2


class TestLookup:
    def test_lookup_text_across_fields(self, toy_index):
        terms = toy_index.lookup_text("probabilistic")
        assert [t.field for t in terms] == [TITLE]

    def test_lookup_normalizes(self, toy_index):
        assert toy_index.lookup_text("  PROBABILISTIC ") == (
            toy_index.lookup_text("probabilistic")
        )

    def test_lookup_author_name(self, toy_index):
        terms = toy_index.lookup_text("ann")
        assert [t.field for t in terms] == [AUTHOR]

    def test_tuples_matching(self, toy_index):
        matches = toy_index.tuples_matching("pattern")
        assert set(matches) == {("papers", 2), ("papers", 3)}

    def test_tuples_matching_unknown(self, toy_index):
        assert toy_index.tuples_matching("zzz") == {}

    def test_terms_of_forward_index(self, toy_index):
        terms = dict(toy_index.terms_of(("papers", 0)))
        texts = {t.text for t in terms}
        assert texts == {"probabilistic", "query", "answering"}

    def test_terms_of_textless_tuple(self, toy_index):
        assert toy_index.terms_of(("writes", 0)) == []


class TestStats:
    def test_df(self, toy_index):
        assert toy_index.df(FieldTerm(TITLE, "probabilistic")) == 2
        assert toy_index.df(FieldTerm(TITLE, "uncertain")) == 1

    def test_total_tf(self, toy_index):
        assert toy_index.total_tf(FieldTerm(TITLE, "pattern")) == 2

    def test_idf_positive_and_monotone(self, toy_index):
        rare = toy_index.idf(FieldTerm(TITLE, "uncertain"))
        common = toy_index.idf(FieldTerm(TITLE, "probabilistic"))
        assert rare > common > 0

    def test_idf_formula(self, toy_index):
        expected = math.log(1 + 9 / (1 + 2))
        assert toy_index.idf(FieldTerm(TITLE, "probabilistic")) == pytest.approx(
            expected
        )

    def test_field_cardinality(self, toy_index):
        assert toy_index.field_cardinality(TITLE) == 10
        assert toy_index.field_cardinality(CONF) == 2
        assert toy_index.field_cardinality(AUTHOR) == 3

    def test_field_cardinality_unknown_field(self, toy_index):
        assert toy_index.field_cardinality(("papers", "nope")) == 0

    def test_terms_iterator_covers_vocabulary(self, toy_index):
        assert sum(1 for _ in toy_index.terms()) == 15
