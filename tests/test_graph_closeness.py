"""Unit tests for repro.graph.closeness on the toy corpus.

Toy distances (term—tuple—term paths):
  probabilistic—p0—query           distance 2, and
  probabilistic—p3—pattern         distance 2;
  probabilistic ... uncertain      distance 4 (p0—vldb—p1 or p0—w0—a0—w1—p1)
"""

import pytest

from repro.errors import GraphError
from repro.graph.closeness import ClosenessExtractor
from repro.index.inverted import FieldTerm

TITLE = ("papers", "title")
CONF = ("conferences", "name")


def node_of(graph, text, field=TITLE):
    return graph.term_node_id(FieldTerm(field, text))


class TestValidation:
    def test_max_depth_positive(self, toy_graph):
        with pytest.raises(GraphError):
            ClosenessExtractor(toy_graph, max_depth=0)

    def test_beam_width_positive_or_none(self, toy_graph):
        with pytest.raises(GraphError):
            ClosenessExtractor(toy_graph, beam_width=0)
        ClosenessExtractor(toy_graph, beam_width=None)

    def test_weighting_validated(self, toy_graph):
        with pytest.raises(GraphError):
            ClosenessExtractor(toy_graph, path_weighting="bogus")

    def test_top_n_validated(self, toy_graph, toy_closeness):
        with pytest.raises(GraphError):
            toy_closeness.close_terms(0, 0)


class TestDistances:
    def test_distance_to_self(self, toy_graph, toy_closeness):
        node = node_of(toy_graph, "probabilistic")
        assert toy_closeness.distance(node, node) == 0

    def test_cooccurring_terms_distance_2(self, toy_graph, toy_closeness):
        assert toy_closeness.distance(
            node_of(toy_graph, "probabilistic"), node_of(toy_graph, "query")
        ) == 2

    def test_venue_mates_distance_4(self, toy_graph, toy_closeness):
        assert toy_closeness.distance(
            node_of(toy_graph, "probabilistic"),
            node_of(toy_graph, "uncertain"),
        ) == 4

    def test_unreachable_within_depth(self, toy_graph):
        tight = ClosenessExtractor(toy_graph, max_depth=2, beam_width=None)
        assert tight.distance(
            node_of(toy_graph, "probabilistic"),
            node_of(toy_graph, "uncertain"),
        ) is None

    def test_term_to_conference_distance(self, toy_graph, toy_closeness):
        # probabilistic — p0 — conference tuple — "vldb" name term
        assert toy_closeness.distance(
            node_of(toy_graph, "probabilistic"),
            node_of(toy_graph, "vldb", CONF),
        ) == 3


class TestCloseness:
    def test_self_closeness_zero(self, toy_graph, toy_closeness):
        node = node_of(toy_graph, "probabilistic")
        assert toy_closeness.closeness(node, node) == 0.0

    def test_unreachable_closeness_zero(self, toy_graph):
        tight = ClosenessExtractor(toy_graph, max_depth=2, beam_width=None)
        assert tight.closeness(
            node_of(toy_graph, "probabilistic"),
            node_of(toy_graph, "uncertain"),
        ) == 0.0

    def test_degree_weighting_symmetric(self, toy_graph, toy_closeness):
        pairs = [
            ("probabilistic", "query"),
            ("probabilistic", "uncertain"),
            ("pattern", "mining"),
            ("frequent", "discovery"),
        ]
        for a, b in pairs:
            na, nb = node_of(toy_graph, a), node_of(toy_graph, b)
            assert toy_closeness.closeness(na, nb) == pytest.approx(
                toy_closeness.closeness(nb, na)
            )

    def test_count_weighting_eq3_by_hand(self, toy_graph):
        """Literal Eq 3 on a hand-counted case.

        probabilistic—{p0,p3}; query—p0.  Exactly one shortest path of
        length 2, so clos = 1/2.
        """
        exact = ClosenessExtractor(
            toy_graph, beam_width=None, path_weighting="count"
        )
        assert exact.closeness(
            node_of(toy_graph, "probabilistic"), node_of(toy_graph, "query")
        ) == pytest.approx(0.5)

    def test_count_weighting_multiple_paths(self, toy_graph):
        """pattern and probabilistic share exactly one tuple (p3): 1 path.
        mining—p2—pattern: also 1 path.  But pattern—{p2,p3} to
        probabilistic—{p0,p3}: 1 shared tuple -> clos 0.5."""
        exact = ClosenessExtractor(
            toy_graph, beam_width=None, path_weighting="count"
        )
        assert exact.closeness(
            node_of(toy_graph, "pattern"), node_of(toy_graph, "probabilistic")
        ) == pytest.approx(0.5)

    def test_direct_beats_indirect(self, toy_graph, toy_closeness):
        prob = node_of(toy_graph, "probabilistic")
        direct = toy_closeness.closeness(prob, node_of(toy_graph, "query"))
        indirect = toy_closeness.closeness(
            prob, node_of(toy_graph, "uncertain")
        )
        assert direct > indirect > 0


class TestReadouts:
    def test_close_terms_only_terms(self, toy_graph, toy_closeness):
        from repro.graph.nodes import NodeKind

        node = node_of(toy_graph, "probabilistic")
        for other, _score in toy_closeness.close_terms(node, 20):
            assert toy_graph.node(other).kind is NodeKind.TERM

    def test_close_terms_sorted(self, toy_graph, toy_closeness):
        node = node_of(toy_graph, "probabilistic")
        scores = [s for _n, s in toy_closeness.close_terms(node, 20)]
        assert scores == sorted(scores, reverse=True)

    def test_close_terms_in_class(self, toy_graph, toy_closeness):
        node = node_of(toy_graph, "probabilistic")
        confs = toy_closeness.close_terms_in_class(node, CONF, 5)
        names = {toy_graph.node(n).text for n, _s in confs}
        assert names == {"vldb", "icdm"}

    def test_caching(self, toy_graph):
        extractor = ClosenessExtractor(toy_graph, beam_width=None)
        node = node_of(toy_graph, "pattern")
        extractor.paths_from(node)
        assert extractor.cache_size() == 1
        extractor.clear_cache()
        assert extractor.cache_size() == 0

    def test_precompute(self, toy_graph):
        extractor = ClosenessExtractor(toy_graph, beam_width=None)
        nodes = [node_of(toy_graph, t) for t in ("pattern", "query")]
        extractor.precompute(nodes)
        assert extractor.cache_size() == 2


class TestPruning:
    def test_beam_limits_frontier_but_keeps_top(self, small_graph):
        """A narrow beam must still find the strongest close terms."""
        exact = ClosenessExtractor(small_graph, beam_width=None)
        pruned = ClosenessExtractor(small_graph, beam_width=100)
        title = ("papers", "title")
        target = next(
            t for t in small_graph.index.terms() if t.field == title
        )
        node = small_graph.term_node_id(target)
        exact_top = {n for n, _s in exact.close_terms(node, 5)}
        pruned_top = {n for n, _s in pruned.close_terms(node, 5)}
        assert len(exact_top & pruned_top) >= 3

    def test_wide_beam_equals_exact(self, toy_graph):
        exact = ClosenessExtractor(toy_graph, beam_width=None)
        wide = ClosenessExtractor(toy_graph, beam_width=10_000)
        node = node_of(toy_graph, "probabilistic")
        assert exact.paths_from(node) == wide.paths_from(node)
