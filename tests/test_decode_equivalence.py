"""Differential decode-oracle suite: every lane pair, adversarial HMMs.

Hypothesis drives :mod:`tests.decode_oracle` with adversarial instances
(exact ties, zeros, magnitude skew, single-candidate positions,
1-keyword queries, k beyond the lattice) — over 500 generated instances
per run, derandomized so CI is deterministic.  The explicit constructions
at the bottom pin the tie-break contract on hand-built tied scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateState, StateKind
from repro.core.enumeration import brute_force_topk
from repro.core.hmm import ReformulationHMM
from repro.core.viterbi import viterbi_top1, viterbi_top1_vec

from tests.decode_oracle import (
    TOP1_LANES,
    TOPK_LANES,
    check_top1_equivalence,
    check_topk_equivalence,
    run_topk_lanes,
    signature,
)
from tests.strategies import hmm_instances, hmms, topk_values


class TestDifferentialOracle:
    """≥500 generated instances through every decode lane pair."""

    @settings(max_examples=200, deadline=None, derandomize=True)
    @given(hmm_instances(), topk_values)
    def test_topk_contract_adversarial(self, hmm, k):
        check_topk_equivalence(hmm, k)

    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(hmms(), st.integers(min_value=1, max_value=8))
    def test_topk_contract_baseline(self, hmm, k):
        check_topk_equivalence(hmm, k)

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(hmm_instances())
    def test_topk_k_beyond_lattice(self, hmm):
        """k > path count: every lane returns the whole (sorted) space."""
        check_topk_equivalence(hmm, hmm.search_space + 7)

    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(hmm_instances())
    def test_top1_contract(self, hmm):
        check_top1_equivalence(hmm)


def build_hmm(pi, emissions, transitions) -> ReformulationHMM:
    """Hand-built HMM over synthetic candidate states."""
    states = [
        [
            CandidateState(StateKind.SIMILAR, i * 16 + j, f"t{i}_{j}", 1.0)
            for j in range(len(e))
        ]
        for i, e in enumerate(emissions)
    ]
    return ReformulationHMM(
        query=tuple(f"q{i}" for i in range(len(emissions))),
        states=states,
        pi=np.asarray(pi, dtype=np.float64),
        emissions=[np.asarray(e, dtype=np.float64) for e in emissions],
        transitions=[np.asarray(t, dtype=np.float64) for t in transitions],
    )


def lex_paths(sizes, count):
    """First *count* paths of the product space in lexicographic order."""
    paths = [()]
    for n in sizes:
        paths = [p + (j,) for p in paths for j in range(n)]
    return paths[:count]


class TestDeliberateTies:
    """Regression tests for tie-breaking drift: hand-built tied scores."""

    def test_uniform_hmm_every_lane_returns_lex_order(self):
        """All 27 paths tie exactly → top-5 is the lex-first 5, everywhere."""
        third = 1.0 / 3.0
        hmm = build_hmm(
            pi=[third] * 3,
            emissions=[[third] * 3] * 3,
            transitions=[np.ones((3, 3))] * 2,
        )
        expected = lex_paths([3, 3, 3], 5)
        for name, res in run_topk_lanes(hmm, 5).items():
            assert [q.state_path for q in res] == expected, name
            assert len({q.score for q in res}) == 1, name

    def test_uniform_hmm_top1_is_all_zeros(self):
        third = 1.0 / 3.0
        hmm = build_hmm(
            pi=[third] * 3,
            emissions=[[third] * 3] * 3,
            transitions=[np.ones((3, 3))] * 2,
        )
        for _name, _space, fn in TOP1_LANES:
            assert fn(hmm).state_path == (0, 0, 0), _name

    def test_twin_states_tie_to_lower_index(self):
        """States 1 and 2 of the middle position are exact twins: every
        lane must order the twin paths lower-index-first."""
        hmm = build_hmm(
            pi=[0.7, 0.3],
            emissions=[[0.6, 0.4], [0.2, 0.4, 0.4], [1.0]],
            transitions=[
                np.array([[0.5, 0.25, 0.25], [0.9, 0.05, 0.05]]),
                np.array([[0.8], [0.6], [0.6]]),
            ],
        )
        for name, res in run_topk_lanes(hmm, hmm.search_space).items():
            paths = [q.state_path for q in res]
            scores = [q.score for q in res]
            for (pa, sa), (pb, sb) in zip(
                zip(paths, scores), zip(paths[1:], scores[1:])
            ):
                if sa == sb:
                    assert pa < pb, f"{name}: tie out of lex order"
            # The twin of every returned path scores identically, so the
            # twin pair must be adjacent, lower middle-index first.
            for (pa, sa), (pb, sb) in zip(
                zip(paths, scores), zip(paths[1:], scores[1:])
            ):
                if pa[0] == pb[0] and pa[2] == pb[2] and {pa[1], pb[1]} == {1, 2}:
                    assert sa == sb, f"{name}: twins must tie exactly"
                    assert pa[1] == 1, f"{name}: twin tie not lower-first"

    def test_cross_multiset_tie_is_lex_ordered_per_lane(self):
        """1.0·0.25 == 0.5·0.5 exactly: ties built from *different* factor
        multisets still come out lex-ordered within every lane, and the
        ref/vec twins agree bit-for-bit (the cross-family guarantee is
        score-level only — see the oracle docstring)."""
        hmm = build_hmm(
            pi=[0.5, 0.5],
            emissions=[[0.5, 0.5], [0.5, 0.5]],
            # path (0,0): 0.25·1.0… arrange t so (0,·) and (1,·) collide
            transitions=[np.array([[1.0, 0.25], [0.5, 0.5]])],
        )
        results = run_topk_lanes(hmm, 4)
        for name, res in results.items():
            scores = [q.score for q in res]
            paths = [q.state_path for q in res]
            for (pa, sa), (pb, sb) in zip(
                zip(paths, scores), zip(paths[1:], scores[1:])
            ):
                if sa == sb:
                    assert pa < pb, f"{name}: tie out of lex order"
        for base in ("viterbi_topk", "viterbi_topk_log", "astar", "astar_log"):
            assert signature(results[f"{base}/reference"]) == signature(
                results[f"{base}/vectorized"]
            ), base
        check_topk_equivalence(hmm, 4)

    def test_tied_top1_prefers_lex_smallest(self):
        """Two exactly tied maxima (twin construction): top-1 must pick
        the lexicographically smaller one in both lanes."""
        hmm = build_hmm(
            pi=[0.5, 0.5],
            emissions=[[0.5, 0.5], [0.5, 0.5]],
            transitions=[np.array([[1.0, 1.0], [0.25, 0.25]])],
        )
        # Paths (0,0) and (0,1) tie at the top with identical factors.
        oracle = brute_force_topk(hmm, 2)
        assert oracle[0].score == oracle[1].score
        assert viterbi_top1(hmm).state_path == oracle[0].state_path == (0, 0)
        assert viterbi_top1_vec(hmm).state_path == (0, 0)

    def test_zero_probability_lattice_stays_consistent(self):
        """An all-zero transition row makes whole path families score 0;
        the oracle contract must hold through the zero tail."""
        hmm = build_hmm(
            pi=[0.5, 0.5],
            emissions=[[0.5, 0.5], [0.25, 0.75]],
            transitions=[np.array([[0.0, 0.0], [0.4, 0.6]])],
        )
        check_topk_equivalence(hmm, 3)
        check_topk_equivalence(hmm, hmm.search_space + 2)
        check_top1_equivalence(hmm)

    def test_single_candidate_and_single_keyword(self):
        """Degenerate lattices: 1×1×1 and a 1-keyword query."""
        chain = build_hmm(
            pi=[1.0],
            emissions=[[1.0], [1.0], [1.0]],
            transitions=[np.array([[0.5]]), np.array([[0.25]])],
        )
        check_topk_equivalence(chain, 4)
        check_top1_equivalence(chain)
        single = build_hmm(
            pi=[0.25, 0.25, 0.5],
            emissions=[[0.5, 0.25, 0.25]],
            transitions=[],
        )
        check_topk_equivalence(single, 2)
        check_topk_equivalence(single, 10)
        check_top1_equivalence(single)

    def test_lane_registry_is_complete(self):
        """Every (algorithm, impl) pair of the dispatch table is in the
        oracle's registry — adding a lane without oracle coverage fails."""
        from repro.core.reformulator import _TOPK_DECODERS

        registered = {lane.name for lane in TOPK_LANES}
        for (algorithm, impl) in _TOPK_DECODERS:
            assert f"{algorithm}/{impl}" in registered, (algorithm, impl)
