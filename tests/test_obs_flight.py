"""Unit tests for repro.obs.flight (the request flight recorder)."""

import threading

import pytest

from repro.obs.flight import FlightRecorder, merge_trace_snapshots


def make_record(trace_id="t", ts=1.0, duration_s=0.01, **extra):
    record = {"trace_id": trace_id, "ts": ts, "duration_s": duration_s}
    record.update(extra)
    return record


class TestObserve:
    def test_sampled_request_retained(self):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=1.0)
        assert recorder.observe(make_record(sampled=True)) is True
        assert recorder.observe(make_record(sampled=False)) is False
        assert len(recorder.snapshot()) == 1

    def test_slow_request_kept_despite_unsampled(self):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=0.5)
        record = make_record(duration_s=0.6, sampled=False)
        assert recorder.observe(record) is True
        assert record["slow"] is True
        assert record["notable"] is True

    @pytest.mark.parametrize("flag", ["degraded", "shed", "error"])
    def test_degraded_shed_errored_always_kept(self, flag):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=10.0)
        record = make_record(sampled=False, **{flag: True})
        assert recorder.observe(record) is True
        assert record["notable"] is True
        assert record["slow"] is False

    def test_fast_clean_unsampled_dropped(self):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=10.0)
        record = make_record(sampled=False)
        assert recorder.observe(record) is False
        assert record["notable"] is False
        assert recorder.snapshot() == []

    def test_normal_burst_cannot_evict_notable(self):
        """The two-ring guarantee: sampled traffic has its own ring, so
        a flood of healthy requests never pushes out the slow trace."""
        recorder = FlightRecorder(capacity=2, slow_threshold_s=0.5)
        recorder.observe(make_record("slowpoke", ts=0.0, duration_s=0.9))
        for i in range(10):
            recorder.observe(
                make_record(f"ok-{i}", ts=1.0 + i, sampled=True)
            )
        ids = [r["trace_id"] for r in recorder.snapshot()]
        assert "slowpoke" in ids
        assert len(ids) == 3  # 1 notable + capacity=2 sampled

    def test_rings_are_bounded(self):
        recorder = FlightRecorder(capacity=3, slow_threshold_s=0.0)
        for i in range(10):  # threshold 0: everything is slow/notable
            recorder.observe(make_record(str(i), ts=float(i)))
        ids = [r["trace_id"] for r in recorder.snapshot()]
        assert ids == ["7", "8", "9"]

    def test_snapshot_sorted_by_ts(self):
        recorder = FlightRecorder(capacity=8, slow_threshold_s=0.5)
        recorder.observe(make_record("late-slow", ts=5.0, duration_s=1.0))
        recorder.observe(make_record("early", ts=1.0, sampled=True))
        assert [r["trace_id"] for r in recorder.snapshot()] == [
            "early", "late-slow",
        ]

    def test_stats_counters(self):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=0.5)
        recorder.observe(make_record(duration_s=0.9))          # notable
        recorder.observe(make_record(sampled=True))            # sampled
        recorder.observe(make_record(sampled=False))           # dropped
        assert recorder.stats() == {
            "seen": 3, "kept_sampled": 1, "kept_notable": 1, "resident": 2,
        }

    def test_clear_drops_records_keeps_counters(self):
        recorder = FlightRecorder(capacity=4, slow_threshold_s=0.0)
        recorder.observe(make_record())
        recorder.clear()
        assert recorder.snapshot() == []
        assert recorder.stats()["seen"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(slow_threshold_s=-1.0)


class TestConcurrency:
    def test_concurrent_observers_and_snapshots(self):
        recorder = FlightRecorder(capacity=32, slow_threshold_s=0.5)
        stop = threading.Event()
        snapshots = []

        def writer(tag):
            i = 0
            while not stop.is_set():
                recorder.observe(make_record(
                    f"{tag}-{i}", ts=float(i),
                    duration_s=0.9 if i % 3 == 0 else 0.001,
                    sampled=i % 2 == 0,
                ))
                i += 1

        def reader():
            while not stop.is_set():
                snapshots.append(recorder.snapshot())

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in "ab"
        ] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        stop.wait(0.2)
        stop.set()
        for t in threads:
            t.join()
        assert snapshots  # reader made progress
        for snapshot in snapshots:
            assert len(snapshot) <= 64  # both rings bounded
        stats = recorder.stats()
        assert stats["seen"] >= stats["kept_sampled"] + stats["kept_notable"]


class TestMergeAcrossWorkers:
    def test_merge_under_concurrent_flushes(self):
        """Workers spooling while a merger reads: every merge sees a
        consistent prefix per worker and the final merge sees it all."""
        recorders = [
            FlightRecorder(capacity=128, slow_threshold_s=0.0)
            for _ in range(3)
        ]
        stop = threading.Event()
        merges = []

        def writer(index):
            i = 0
            while not stop.is_set():
                recorders[index].observe(
                    make_record(f"w{index}-{i}", ts=float(i))
                )
                i += 1

        def merger():
            while not stop.is_set():
                merges.append(merge_trace_snapshots([
                    {"worker": i, "traces": r.snapshot()}
                    for i, r in enumerate(recorders)
                ]))

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(3)
        ] + [threading.Thread(target=merger)]
        for t in threads:
            t.start()
        stop.wait(0.2)
        stop.set()
        for t in threads:
            t.join()
        final = merge_trace_snapshots([
            {"worker": i, "traces": r.snapshot()}
            for i, r in enumerate(recorders)
        ])
        assert final["workers"] == [0, 1, 2]
        assert final["count"] == sum(
            len(r.snapshot()) for r in recorders
        )
        for merged in merges:
            ts_values = [r["ts"] for r in merged["traces"]]
            assert ts_values == sorted(ts_values)
