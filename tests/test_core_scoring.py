"""Unit tests for repro.core.scoring."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scoring import (
    ScoredQuery,
    aggregate_similarity,
    normalize_distribution,
    smooth_factors,
    smooth_rows,
)
from repro.errors import ReformulationError

floats01 = st.floats(0.0, 1.0, allow_nan=False)


class TestSmoothFactors:
    def test_lambda_one_is_identity(self):
        raw = np.array([0.2, 0.0, 0.8])
        assert np.array_equal(smooth_factors(raw, 1.0), raw)

    def test_zero_entries_lifted(self):
        raw = np.array([0.0, 1.0])
        smoothed = smooth_factors(raw, 0.8)
        assert smoothed[0] > 0

    def test_mean_preserved(self):
        raw = np.array([0.1, 0.5, 0.9])
        smoothed = smooth_factors(raw, 0.7)
        assert smoothed.mean() == pytest.approx(raw.mean())

    def test_invalid_lambda(self):
        with pytest.raises(ReformulationError):
            smooth_factors(np.array([1.0]), 0.0)
        with pytest.raises(ReformulationError):
            smooth_factors(np.array([1.0]), 1.5)

    def test_empty_array(self):
        assert smooth_factors(np.array([]), 0.8).size == 0

    def test_returns_copy(self):
        raw = np.array([0.5, 0.5])
        smoothed = smooth_factors(raw, 1.0)
        smoothed[0] = 99
        assert raw[0] == 0.5

    @given(st.lists(floats01, min_size=1, max_size=8), st.floats(0.01, 1.0))
    def test_property_order_preserved(self, values, lam):
        raw = np.array(values)
        smoothed = smooth_factors(raw, lam)
        # smoothing is affine with positive slope: order is preserved
        for i in range(len(values)):
            for j in range(len(values)):
                if raw[i] > raw[j]:
                    assert smoothed[i] >= smoothed[j]


class TestSmoothRows:
    def test_row_means_used(self):
        raw = np.array([[0.0, 1.0], [1.0, 1.0]])
        smoothed = smooth_rows(raw, 0.5)
        assert smoothed[0, 0] == pytest.approx(0.25)
        assert smoothed[1, 0] == pytest.approx(1.0)

    def test_lambda_one_identity(self):
        raw = np.array([[0.3, 0.7]])
        assert np.array_equal(smooth_rows(raw, 1.0), raw)

    def test_rows_independent(self):
        raw = np.array([[0.0, 0.0], [1.0, 1.0]])
        smoothed = smooth_rows(raw, 0.5)
        assert np.all(smoothed[0] == 0.0)
        assert np.all(smoothed[1] == 1.0)

    def test_invalid_lambda(self):
        with pytest.raises(ReformulationError):
            smooth_rows(np.zeros((2, 2)), -0.1)


class TestNormalizeDistribution:
    def test_normalizes(self):
        out = normalize_distribution(np.array([1.0, 3.0]))
        assert out.tolist() == [0.25, 0.75]

    def test_all_zero_becomes_uniform(self):
        out = normalize_distribution(np.zeros(4))
        assert np.allclose(out, 0.25)

    def test_negative_rejected(self):
        with pytest.raises(ReformulationError):
            normalize_distribution(np.array([-1.0, 2.0]))

    def test_requires_1d(self):
        with pytest.raises(ReformulationError):
            normalize_distribution(np.zeros((2, 2)))

    @given(st.lists(floats01, min_size=1, max_size=10))
    def test_property_sums_to_one(self, values):
        out = normalize_distribution(np.array(values))
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()


class TestAggregateSimilarity:
    def test_product(self):
        assert aggregate_similarity([0.5, 0.5]) == pytest.approx(0.25)

    def test_empty_is_one(self):
        assert aggregate_similarity([]) == 1.0

    def test_negative_clamped(self):
        assert aggregate_similarity([-0.5, 1.0]) == 0.0


class TestScoredQuery:
    def test_text_drops_voids(self):
        q = ScoredQuery(terms=("a", None, "b"), score=0.5, state_path=(0, 1, 2))
        assert q.text == "a b"
        assert q.keywords == ("a", "b")
        assert len(q) == 2

    def test_all_void(self):
        q = ScoredQuery(terms=(None,), score=0.0, state_path=(0,))
        assert q.text == ""
        assert len(q) == 0
