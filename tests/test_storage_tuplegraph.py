"""Unit tests for repro.storage.tuplegraph."""

import networkx as nx
import pytest

from repro.storage.tuplegraph import TupleGraph

from tests.conftest import build_toy_database


@pytest.fixture()
def graph() -> TupleGraph:
    return TupleGraph(build_toy_database())


class TestStructure:
    def test_node_count(self, graph):
        assert len(graph) == 13  # 2 + 3 + 4 + 4 tuples

    def test_contains(self, graph):
        assert ("papers", 0) in graph
        assert ("papers", 99) not in graph

    def test_edge_count(self, graph):
        assert graph.edge_count() == 12

    def test_neighbors_of_paper(self, graph):
        nbrs = graph.neighbors(("papers", 0))
        assert ("conferences", 0) in nbrs
        assert ("writes", 0) in nbrs

    def test_neighbors_are_symmetric(self, graph):
        for node in graph.nodes():
            for nbr in graph.neighbors(node):
                assert node in graph.neighbors(nbr)

    def test_degree(self, graph):
        # conference 0 hosts papers 0 and 1
        assert graph.degree(("conferences", 0)) == 2

    def test_isolated_tuple_still_node(self):
        db = build_toy_database()
        db.insert("authors", {"aid": 9, "name": "loner"})
        graph = TupleGraph(db)
        assert ("authors", 9) in graph
        assert graph.degree(("authors", 9)) == 0


class TestTraversal:
    def test_bfs_distances(self, graph):
        dist = graph.bfs_distances(("authors", 0), max_depth=2)
        assert dist[("authors", 0)] == 0
        assert dist[("writes", 0)] == 1
        assert dist[("papers", 0)] == 2
        assert dist[("papers", 1)] == 2

    def test_bfs_respects_depth(self, graph):
        dist = graph.bfs_distances(("authors", 0), max_depth=1)
        assert ("papers", 0) not in dist

    def test_shortest_path_trivial(self, graph):
        assert graph.shortest_path(("papers", 0), ("papers", 0)) == [
            ("papers", 0)
        ]

    def test_shortest_path_author_to_conference(self, graph):
        path = graph.shortest_path(("authors", 0), ("conferences", 0))
        assert path[0] == ("authors", 0)
        assert path[-1] == ("conferences", 0)
        assert len(path) == 4  # author - writes - paper - conference

    def test_shortest_path_unreachable_within_depth(self, graph):
        path = graph.shortest_path(
            ("authors", 0), ("authors", 1), max_depth=2
        )
        assert path == []

    def test_shortest_path_cross_community(self, graph):
        # ann (vldb) to bob (icdm) are connected only through... nothing
        # within the toy graph's 13 nodes?  They are: no shared venue, so
        # the only route is author-writes-paper-conf-paper-writes-author,
        # requiring both papers at the same conference — false here, so
        # distance is infinite between ann and bob's components?  Actually
        # the graph is connected only through conferences; ann's papers
        # are at vldb, bob's at icdm, and nothing joins vldb with icdm.
        path = graph.shortest_path(("authors", 0), ("authors", 1), max_depth=8)
        assert path == []

    def test_eve_and_bob_share_icdm(self, graph):
        path = graph.shortest_path(("authors", 1), ("authors", 2), max_depth=8)
        assert path  # bob - writes - p2 - icdm - p3 - writes - eve
        assert len(path) == 7


class TestExport:
    def test_networkx_roundtrip(self, graph):
        g = graph.to_networkx()
        assert isinstance(g, nx.Graph)
        assert g.number_of_nodes() == len(graph)
        assert g.number_of_edges() == graph.edge_count()

    def test_networkx_distances_agree(self, graph):
        g = graph.to_networkx()
        expected = nx.shortest_path_length(g, ("authors", 0))
        mine = graph.bfs_distances(("authors", 0), max_depth=10)
        assert mine == {n: d for n, d in expected.items() if d <= 10}
