"""HTTP-level tests for the serving daemon (repro.server).

A module-scoped daemon over the toy corpus covers the endpoint surface;
dedicated per-test daemons (tiny capacity, short timeouts) cover the
overload, deadline-degradation and drain paths.
"""

import threading
import time

import pytest

from repro import obs
from repro.core.reformulator import ReformulatorConfig
from repro.live import LiveReformulator
from repro.server import (
    DEGRADE_CACHED,
    DEGRADE_VITERBI,
    ReformulationServer,
    ServerClient,
    ServerClientError,
    ServerConfig,
    suggestions_signature,
)

from tests.conftest import build_toy_database


def _make_server(**config_kwargs) -> ReformulationServer:
    defaults = dict(port=0, keepalive_timeout_s=1.0)
    defaults.update(config_kwargs)
    live = LiveReformulator(
        build_toy_database(), ReformulatorConfig(n_candidates=6)
    )
    return ReformulationServer(live, ServerConfig(**defaults)).start()


def _signature(results):
    return [(s.text, s.score, s.state_path) for s in results]


@pytest.fixture(scope="module")
def server():
    srv = _make_server()
    yield srv
    srv.shutdown()


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as c:
        yield c


class TestHealth:
    def test_healthz(self, client):
        response = client.healthz()
        assert response.status == 200
        assert response.json == {
            "status": "ok", "draining": False, "ingest_epoch": 0,
        }

    def test_readyz_after_warm_start(self, client, server):
        response = client.readyz()
        assert response.status == 200
        assert response.json["version"] == server.live.version >= 1

    def test_unknown_route_404(self, client):
        assert client.request("GET", "/nope").status == 404

    def test_wrong_verb_405(self, client):
        assert client.request("GET", "/reformulate").status == 405
        assert client.request("POST", "/similar", {}).status == 405


class TestReformulate:
    def test_matches_direct_bit_identical(self, client, server):
        for keywords, k in (
            (["probabilistic", "query"], 3),
            (["pattern", "mining"], 2),
        ):
            response = client.reformulate(keywords, k=k)
            assert response.status == 200
            payload = response.json
            assert payload["degraded"] is False
            assert payload["degraded_mode"] is None
            direct = server.live.reformulate(keywords, k=k)
            assert suggestions_signature(
                payload["suggestions"]
            ) == _signature(direct)

    def test_algorithm_passthrough(self, client, server):
        response = client.reformulate(
            ["probabilistic", "query"], k=3, algorithm="viterbi_topk"
        )
        assert response.status == 200
        direct = server.live.reformulate(
            ["probabilistic", "query"], k=3, algorithm="viterbi_topk"
        )
        assert suggestions_signature(
            response.json["suggestions"]
        ) == _signature(direct)

    def test_raw_query_string_is_parsed(self, client):
        response = client.reformulate(query="Probabilistic Query")
        assert response.status == 200
        assert response.json["keywords"] == ["probabilistic", "query"]

    def test_bad_algorithm_400(self, client):
        response = client.reformulate(
            ["probabilistic", "query"], algorithm="quantum"
        )
        assert response.status == 400
        assert "algorithm" in response.json["error"]

    @pytest.mark.parametrize("payload", [
        {},
        {"keywords": []},
        {"keywords": "probabilistic"},
        {"keywords": ["probabilistic", 7]},
        {"keywords": ["probabilistic"], "k": 0},
        {"keywords": ["probabilistic"], "k": "three"},
        {"keywords": ["probabilistic"], "deadline_ms": "soon"},
        {"query": "   "},
    ])
    def test_invalid_payloads_400(self, client, payload):
        assert client.request("POST", "/reformulate", payload).status == 400

    def test_non_json_body_400(self, client):
        connection = client._connection()
        connection.request(
            "POST", "/reformulate", body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        body = response.read()
        assert response.status == 400
        assert b"JSON" in body


class TestBatch:
    def test_matches_direct(self, client, server):
        queries = [
            ["probabilistic", "query"],
            ["pattern", "mining"],
            ["probabilistic", "query"],  # duplicate: dedup must not reorder
        ]
        response = client.reformulate_batch(queries, k=2, workers=2)
        assert response.status == 200
        payload = response.json
        assert payload["degraded"] is False
        assert len(payload["results"]) == 3
        for query, entry in zip(queries, payload["results"]):
            assert entry["keywords"] == query
            direct = server.live.reformulate(query, k=2)
            assert suggestions_signature(
                entry["suggestions"]
            ) == _signature(direct)

    @pytest.mark.parametrize("payload", [
        {},
        {"queries": []},
        {"queries": "probabilistic"},
        {"queries": [["probabilistic"], []]},
        {"queries": [["probabilistic"]], "workers": 0},
    ])
    def test_invalid_payloads_400(self, client, payload):
        response = client.request("POST", "/reformulate/batch", payload)
        assert response.status == 400


class TestSimilar:
    def test_similar_terms(self, client, server):
        response = client.similar("probabilistic", n=5)
        assert response.status == 200
        payload = response.json
        assert payload["term"] == "probabilistic"
        direct = server.live.similar_terms("probabilistic", 5)
        assert [
            (entry["term"], entry["score"]) for entry in payload["similar"]
        ] == [(term, score) for term, score in direct]

    def test_missing_term_400(self, client):
        assert client.request("GET", "/similar").status == 400

    def test_bad_n_400(self, client):
        assert client.request("GET", "/similar?term=x&n=zero").status == 400
        assert client.request("GET", "/similar?term=x&n=0").status == 400


class TestAdminReload:
    def test_reload_marks_stale_and_rebuilds_on_next_query(self):
        server = _make_server()
        try:
            with ServerClient(port=server.port) as client:
                assert client.reformulate(
                    ["probabilistic", "query"], k=2
                ).status == 200
                version = server.live.version
                response = client.admin_reload()
                assert response.status == 200
                assert response.json["reloaded"] is True
                assert response.json["stale"] is True
                after = client.reformulate(["probabilistic", "query"], k=2)
                assert after.status == 200
                assert after.json["version"] == version + 1
        finally:
            server.shutdown()


class TestOverload:
    def test_saturated_server_sheds_with_retry_after(self):
        server = _make_server(max_concurrency=1, queue_depth=0)
        try:
            with ServerClient(port=server.port) as client:
                with server.admission.admit():  # hold the only permit
                    response = client.reformulate(
                        ["probabilistic", "query"], k=2
                    )
                    assert response.status == 429
                    assert response.retry_after >= 1
                    assert "overloaded" in response.json["error"]
                # permit released: the same request now succeeds
                assert client.reformulate(
                    ["probabilistic", "query"], k=2
                ).status == 200
            assert server.admission.stats().shed == 1
        finally:
            server.shutdown()

    def test_queue_timeout_sheds(self):
        server = _make_server(
            max_concurrency=1, queue_depth=4, queue_timeout_s=0.05
        )
        try:
            with ServerClient(port=server.port) as client:
                with server.admission.admit():
                    start = time.perf_counter()
                    response = client.reformulate(
                        ["probabilistic", "query"], k=2
                    )
                    assert response.status == 429
                    assert time.perf_counter() - start >= 0.04
            assert server.admission.stats().shed_timeout == 1
        finally:
            server.shutdown()

    def test_concurrent_overload_every_request_answered(self):
        """2x capacity: every request gets 200 or 429, nothing dropped,
        and the shed metric equals the number of 429s."""
        server = _make_server(max_concurrency=1, queue_depth=1)
        obs.reset()
        statuses = []
        lock = threading.Lock()

        def fire():
            with ServerClient(port=server.port) as c:
                response = c.reformulate(["probabilistic", "query"], k=2)
                with lock:
                    statuses.append(response.status)

        try:
            with obs.enabled():
                with ServerClient(port=server.port) as warm:
                    assert warm.reformulate(
                        ["probabilistic", "pattern"], k=2
                    ).status == 200
                with server.admission.admit():  # force sheds deterministically
                    threads = [
                        threading.Thread(target=fire) for _ in range(6)
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join(timeout=10.0)
            assert len(statuses) == 6
            assert set(statuses) <= {200, 429}
            n_shed = statuses.count(429)
            assert n_shed >= 1
            shed_metric = obs.registry().get("repro_server_shed_total")
            assert shed_metric is not None
            assert shed_metric.value == server.admission.stats().shed
            assert server.admission.stats().shed >= n_shed
        finally:
            obs.reset()
            server.shutdown()


class TestDeadlineDegradation:
    def test_tight_deadline_falls_back_to_viterbi(self):
        server = _make_server()
        try:
            with ServerClient(port=server.port) as client:
                response = client.reformulate(
                    ["pattern", "mining"], k=3, deadline_ms=1
                )
                assert response.status == 200
                payload = response.json
                assert payload["degraded"] is True
                assert payload["degraded_mode"] == DEGRADE_VITERBI
                # still a well-formed scored suggestion
                assert len(payload["suggestions"]) == 1
                best = payload["suggestions"][0]
                assert best["text"] and best["score"] > 0
                assert len(best["state_path"]) == 2
                direct = server.live.best(["pattern", "mining"])
                assert suggestions_signature(
                    payload["suggestions"]
                ) == _signature([direct])
        finally:
            server.shutdown()

    def test_tight_deadline_serves_cached_full_answer(self):
        server = _make_server()
        try:
            with ServerClient(port=server.port) as client:
                full = client.reformulate(["probabilistic", "query"], k=3)
                assert full.json["degraded"] is False
                degraded = client.reformulate(
                    ["probabilistic", "query"], k=3, deadline_ms=1
                )
                payload = degraded.json
                assert payload["degraded"] is True
                assert payload["degraded_mode"] == DEGRADE_CACHED
                # the cached fallback is the full top-k, not a top-1
                assert suggestions_signature(
                    payload["suggestions"]
                ) == suggestions_signature(full.json["suggestions"])
        finally:
            server.shutdown()

    def test_batch_deadline_degrades_every_entry(self):
        server = _make_server()
        try:
            with ServerClient(port=server.port) as client:
                response = client.reformulate_batch(
                    [["probabilistic", "query"], ["pattern", "mining"]],
                    k=2, deadline_ms=1,
                )
                payload = response.json
                assert payload["degraded"] is True
                assert payload["degraded_mode"] in (
                    DEGRADE_CACHED, DEGRADE_VITERBI
                )
                for entry in payload["results"]:
                    assert entry["suggestions"]
                    assert entry["suggestions"][0]["score"] > 0
        finally:
            server.shutdown()

    def test_roomy_deadline_takes_full_path(self):
        server = _make_server()
        try:
            with ServerClient(port=server.port) as client:
                response = client.reformulate(
                    ["probabilistic", "query"], k=3, deadline_ms=60_000
                )
                assert response.json["degraded"] is False
        finally:
            server.shutdown()

    def test_degraded_counter(self):
        server = _make_server()
        obs.reset()
        try:
            with obs.enabled():
                with ServerClient(port=server.port) as client:
                    client.reformulate(
                        ["probabilistic", "query"], k=2, deadline_ms=1
                    )
            counter = obs.registry().get("repro_server_degraded_total")
            assert counter is not None and counter.value == 1.0
            assert server.degraded_served == 1
        finally:
            obs.reset()
            server.shutdown()


class TestMetrics:
    def test_request_series_and_exposition(self):
        server = _make_server(max_concurrency=1, queue_depth=0)
        obs.reset()
        try:
            with obs.enabled():
                with ServerClient(port=server.port) as client:
                    assert client.reformulate(
                        ["probabilistic", "query"], k=2
                    ).status == 200
                    with server.admission.admit():
                        assert client.reformulate(
                            ["probabilistic", "query"], k=2
                        ).status == 429
                    metrics_text = client.metrics().text
            registry = obs.registry()
            ok_counter = registry.get(
                "repro_server_requests_total",
                route="/reformulate", status="200",
            )
            shed_counter = registry.get(
                "repro_server_requests_total",
                route="/reformulate", status="429",
            )
            assert ok_counter is not None and ok_counter.value == 1.0
            assert shed_counter is not None and shed_counter.value == 1.0
            assert registry.get("repro_server_shed_total").value == 1.0
            histogram = registry.get(
                "repro_server_request_seconds", route="/reformulate"
            )
            assert histogram is not None and histogram.count == 2
            for name in (
                "repro_server_requests_total",
                "repro_server_shed_total",
                "repro_server_request_seconds",
                "repro_server_inflight",
            ):
                assert name in metrics_text
        finally:
            obs.reset()
            server.shutdown()

    def test_no_series_when_disabled(self):
        server = _make_server()
        obs.reset()
        try:
            assert not obs.is_enabled()
            with ServerClient(port=server.port) as client:
                assert client.reformulate(
                    ["probabilistic", "query"], k=2
                ).status == 200
            assert obs.registry().get("repro_server_requests_total") is None
        finally:
            obs.reset()
            server.shutdown()


class TestShutdown:
    def test_shutdown_stops_serving(self):
        server = _make_server()
        with ServerClient(port=server.port) as client:
            assert client.healthz().status == 200
        server.shutdown()
        with pytest.raises(ServerClientError):
            ServerClient(port=server.port, timeout_s=0.5).healthz()

    def test_shutdown_is_idempotent(self):
        server = _make_server()
        server.shutdown()
        server.shutdown()

    def test_shutdown_drains_in_flight_request(self):
        """A request executing when shutdown starts must complete 200."""
        server = _make_server(keepalive_timeout_s=0.5)
        live = server.live
        started = threading.Event()
        release = threading.Event()
        original = live.reformulate_lane

        def slow_reformulate(*args, **kwargs):
            started.set()
            assert release.wait(timeout=10.0)
            return original(*args, **kwargs)

        live.reformulate_lane = slow_reformulate
        responses = []

        def fire():
            with ServerClient(port=server.port) as c:
                responses.append(
                    c.reformulate(["probabilistic", "query"], k=2)
                )

        request_thread = threading.Thread(target=fire)
        request_thread.start()
        assert started.wait(timeout=10.0)
        drain_thread = threading.Thread(target=server.shutdown)
        drain_thread.start()
        time.sleep(0.1)
        assert server.draining and not server.ready
        assert drain_thread.is_alive()  # still waiting on the request
        release.set()
        request_thread.join(timeout=10.0)
        drain_thread.join(timeout=10.0)
        assert not drain_thread.is_alive()
        assert len(responses) == 1 and responses[0].status == 200


class TestRequestId:
    def test_client_id_echoed_on_200(self, client):
        response = client.request(
            "POST", "/reformulate",
            {"keywords": ["probabilistic", "query"], "k": 2},
            request_id="my-request-7",
        )
        assert response.status == 200
        assert response.request_id == "my-request-7"

    def test_generated_when_absent(self, client):
        response = client.healthz()
        assert response.request_id
        assert len(response.request_id) == 16
        int(response.request_id, 16)
        # health body unchanged: the id rides the header only
        assert response.json == {
            "status": "ok", "draining": False, "ingest_epoch": 0,
        }

    def test_unsafe_id_sanitized(self, client):
        response = client.request(
            "GET", "/healthz", request_id="a b!\tc" + "x" * 100
        )
        assert response.request_id == ("abcx" + "x" * 60)  # 64 chars max

    def test_present_on_400(self, client):
        response = client.request("POST", "/reformulate", {"keywords": []})
        assert response.status == 400
        assert response.request_id

    def test_present_on_404_and_405(self, client):
        assert client.request("GET", "/nope").request_id
        assert client.request("GET", "/reformulate").request_id

    def test_present_and_echoed_on_429_shed(self):
        server = _make_server(max_concurrency=1, queue_depth=0)
        try:
            with ServerClient(port=server.port) as client:
                with server.admission.admit():  # hold the only permit
                    response = client.request(
                        "POST", "/reformulate",
                        {"keywords": ["probabilistic", "query"]},
                        request_id="shed-me",
                    )
                    assert response.status == 429
                    assert response.request_id == "shed-me"
        finally:
            server.shutdown()


class TestDebugTraces:
    def test_trace_retrievable_with_span_tree_and_stages(self):
        server = _make_server(trace_sample_rate=1.0)
        obs.reset()
        try:
            with obs.enabled():
                with ServerClient(port=server.port) as client:
                    assert client.request(
                        "POST", "/reformulate",
                        {"keywords": ["probabilistic", "query"], "k": 2},
                        request_id="trace-me",
                    ).status == 200
                    payload = client.debug_traces().json
            assert payload["workers"] == [0]
            mine = [
                r for r in payload["traces"]
                if r["trace_id"] == "trace-me"
            ]
            assert len(mine) == 1
            record = mine[0]
            assert record["route"] == "/reformulate"
            assert record["status"] == 200
            assert record["cache"] == "miss"
            assert record["algorithm"] == "astar"
            assert record["keywords"] == ["probabilistic", "query"]
            for stage in ("parse", "queue_wait", "serialize",
                          "assemble", "decode"):
                assert stage in record["stages"], record["stages"]
            tree = record["span_tree"]
            assert tree["name"] == "http.request"
            assert tree["attributes"]["trace_id"] == "trace-me"
            names = {child["name"] for child in tree["children"]}
            assert {"admission", "handle"} <= names
        finally:
            obs.reset()
            server.shutdown()

    def test_unsampled_fast_request_not_retained(self):
        server = _make_server(trace_sample_rate=0.0, slow_trace_ms=60000)
        try:
            with ServerClient(port=server.port) as client:
                client.reformulate(["probabilistic", "query"], k=2)
                traces = client.debug_traces().json["traces"]
            # the /debug/traces request itself is also unsampled
            assert all(
                r["route"] != "/reformulate" for r in traces
            )
        finally:
            server.shutdown()

    def test_shed_request_always_captured(self):
        server = _make_server(
            max_concurrency=1, queue_depth=0, trace_sample_rate=0.0
        )
        try:
            with ServerClient(port=server.port) as client:
                with server.admission.admit():
                    client.request(
                        "POST", "/reformulate",
                        {"keywords": ["probabilistic", "query"]},
                        request_id="shed-trace",
                    )
                payload = client.debug_traces().json
            shed = [
                r for r in payload["traces"]
                if r["trace_id"] == "shed-trace"
            ]
            assert len(shed) == 1
            assert shed[0]["shed"] is True
            assert shed[0]["notable"] is True
            assert shed[0]["status"] == 429
            assert "queue_wait" in shed[0]["stages"]
        finally:
            server.shutdown()

    def test_degraded_request_always_captured(self):
        server = _make_server(trace_sample_rate=0.0)
        try:
            with ServerClient(port=server.port) as client:
                response = client.reformulate(
                    ["probabilistic", "query"], k=2, deadline_ms=1
                )
                assert response.json["degraded"] is True
                payload = client.debug_traces().json
            degraded = [
                r for r in payload["traces"] if r.get("degraded")
            ]
            assert degraded
            assert degraded[0]["degraded_mode"] == DEGRADE_VITERBI
        finally:
            server.shutdown()

    def test_n_param_limits_and_validates(self, client):
        assert client.debug_traces(n=1).status == 200
        assert len(client.debug_traces(n=1).json["traces"]) <= 1
        assert client.request("GET", "/debug/traces?n=zzz").status == 400


class TestAccessLog:
    def test_one_json_line_per_request_joinable_on_trace_id(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        server = _make_server(
            access_log_path=str(log_path), trace_sample_rate=1.0
        )
        try:
            with ServerClient(port=server.port) as client:
                client.request(
                    "POST", "/reformulate",
                    {"keywords": ["probabilistic", "query"], "k": 2},
                    request_id="logged-1",
                )
                client.healthz()
                client.request("POST", "/reformulate", {"keywords": []})
        finally:
            server.shutdown()
        import json as _json

        lines = [
            _json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(lines) == 3
        by_id = {line["trace_id"]: line for line in lines}
        record = by_id["logged-1"]
        assert record["route"] == "/reformulate"
        assert record["status"] == 200
        assert "span_tree" not in record  # bulky: flight recorder only
        assert record["stages"]["queue_wait"] == 0.0
        statuses = sorted(line["status"] for line in lines)
        assert statuses == [200, 200, 400]

    def test_no_log_file_when_disabled(self, server):
        assert server.access_log is None
