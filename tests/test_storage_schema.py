"""Unit tests for repro.storage.schema."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)


class TestColumn:
    def test_defaults_to_nullable_text(self):
        col = Column("title")
        assert col.type == "text"
        assert col.nullable

    def test_rejects_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("bad name")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            Column("x", "varchar")

    def test_validate_none_on_nullable(self):
        Column("x", "int", nullable=True).validate_value(None)

    def test_validate_none_on_not_nullable(self):
        with pytest.raises(SchemaError):
            Column("x", "int", nullable=False).validate_value(None)

    def test_validate_int(self):
        Column("x", "int").validate_value(5)
        with pytest.raises(SchemaError):
            Column("x", "int").validate_value("5")

    def test_validate_float_accepts_int(self):
        Column("x", "float").validate_value(5)
        Column("x", "float").validate_value(5.5)

    def test_validate_float_rejects_str(self):
        with pytest.raises(SchemaError):
            Column("x", "float").validate_value("5.5")

    def test_validate_text(self):
        Column("x", "text").validate_value("hello")
        with pytest.raises(SchemaError):
            Column("x", "text").validate_value(42)


class TestTableSchema:
    def make(self, **kwargs):
        defaults = dict(
            name="papers",
            columns=[
                Column("pid", "int", nullable=False),
                Column("title", "text"),
                Column("cid", "int"),
            ],
            primary_key="pid",
        )
        defaults.update(kwargs)
        return TableSchema(**defaults)

    def test_basic_construction(self):
        schema = self.make()
        assert schema.column_names == ("pid", "title", "cid")
        assert schema.primary_key == "pid"

    def test_string_columns_become_text(self):
        schema = TableSchema("t", ["a", "b"], primary_key="a")
        assert schema.column("b").type == "text"

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ["a", "a"], primary_key="a")

    def test_rejects_unknown_primary_key(self):
        with pytest.raises(UnknownColumnError):
            self.make(primary_key="nope")

    def test_rejects_invalid_table_name(self):
        with pytest.raises(SchemaError):
            self.make(name="bad name")

    def test_rejects_non_column_entry(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [42], primary_key="42")

    def test_default_text_fields_exclude_pk(self):
        schema = TableSchema("t", ["a", "b", "c"], primary_key="a")
        assert set(schema.text_fields) == {"b", "c"}

    def test_default_text_fields_exclude_non_text(self):
        schema = self.make()
        assert schema.text_fields == ("title",)

    def test_explicit_text_fields_validated(self):
        with pytest.raises(UnknownColumnError):
            self.make(text_fields=["nope"])

    def test_text_field_must_be_text_type(self):
        with pytest.raises(SchemaError):
            self.make(text_fields=["cid"])

    def test_atomic_must_be_text_field(self):
        with pytest.raises(SchemaError):
            self.make(atomic_fields=["cid"])

    def test_is_atomic(self):
        schema = self.make(text_fields=["title"], atomic_fields=["title"])
        assert schema.is_atomic("title")
        assert not self.make().is_atomic("title")

    def test_column_lookup_unknown(self):
        with pytest.raises(UnknownColumnError):
            self.make().column("nope")

    def test_has_column(self):
        schema = self.make()
        assert schema.has_column("title")
        assert not schema.has_column("nope")

    def test_validate_row_ok(self):
        self.make().validate_row({"pid": 1, "title": "x", "cid": None})

    def test_validate_row_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            self.make().validate_row({"pid": 1, "bogus": "x"})

    def test_validate_row_missing_pk(self):
        with pytest.raises(SchemaError):
            self.make().validate_row({"title": "x"})

    def test_validate_row_type_error(self):
        with pytest.raises(SchemaError):
            self.make().validate_row({"pid": 1, "title": 99})


class TestDatabaseSchema:
    def make(self):
        schema = DatabaseSchema()
        schema.add_table(TableSchema(
            "parent", [Column("id", "int", nullable=False)], primary_key="id",
        ))
        schema.add_table(TableSchema(
            "child",
            [Column("id", "int", nullable=False), Column("pid", "int")],
            primary_key="id",
        ))
        return schema

    def test_add_and_lookup(self):
        schema = self.make()
        assert schema.table("parent").name == "parent"

    def test_duplicate_table_rejected(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.add_table(TableSchema(
                "parent", [Column("id", "int", nullable=False)],
                primary_key="id",
            ))

    def test_unknown_table_lookup(self):
        with pytest.raises(UnknownTableError):
            self.make().table("nope")

    def test_add_foreign_key(self):
        schema = self.make()
        schema.add_foreign_key(ForeignKey("child", "pid", "parent", "id"))
        assert len(schema.foreign_keys) == 1

    def test_fk_unknown_table(self):
        schema = self.make()
        with pytest.raises(UnknownTableError):
            schema.add_foreign_key(ForeignKey("nope", "pid", "parent", "id"))

    def test_fk_unknown_column(self):
        schema = self.make()
        with pytest.raises(UnknownColumnError):
            schema.add_foreign_key(ForeignKey("child", "nope", "parent", "id"))

    def test_fk_must_reference_pk(self):
        schema = DatabaseSchema()
        schema.add_table(TableSchema(
            "parent",
            [Column("id", "int", nullable=False), Column("other", "int")],
            primary_key="id",
        ))
        schema.add_table(TableSchema(
            "child",
            [Column("id", "int", nullable=False), Column("pid", "int")],
            primary_key="id",
        ))
        with pytest.raises(SchemaError):
            schema.add_foreign_key(
                ForeignKey("child", "pid", "parent", "other")
            )

    def test_foreign_keys_of_and_into(self):
        schema = self.make()
        fk = ForeignKey("child", "pid", "parent", "id")
        schema.add_foreign_key(fk)
        assert schema.foreign_keys_of("child") == [fk]
        assert schema.foreign_keys_of("parent") == []
        assert schema.foreign_keys_into("parent") == [fk]
        assert schema.foreign_keys_into("child") == []
