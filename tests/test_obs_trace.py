"""Unit tests for repro.obs.trace and the module-level switch."""

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.obs.trace import (
    MAX_TRACE_ID_LEN,
    NOOP_SPAN,
    Span,
    TraceContext,
    Tracer,
    annotate_trace,
    current_trace,
    new_trace_id,
    sanitize_trace_id,
    trace_scope,
)


class TestSpan:
    def test_attributes_from_kwargs_and_set(self):
        span = Span("op", {"k": 5})
        span.set_attribute("result", "ok")
        assert span.attributes == {"k": 5, "result": "ok"}

    def test_finish_is_idempotent(self):
        span = Span("op")
        span.finish()
        first_end = span.end_time
        span.finish()
        assert span.end_time == first_end

    def test_duration_while_open_and_after_finish(self):
        span = Span("op")
        assert not span.is_finished
        assert span.duration >= 0.0
        span.finish()
        assert span.is_finished
        frozen = span.duration
        assert span.duration == frozen


class TestTracer:
    def test_nesting_follows_lexical_structure(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a") as a:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in a.children] == ["grandchild"]
        assert root.is_finished

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("root") as root:
            assert tracer.current() is root
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is root
        assert tracer.current() is None

    def test_only_roots_retained(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.roots()] == ["root"]
        assert tracer.last_root().name == "root"

    def test_root_ring_is_bounded(self):
        tracer = Tracer(keep_roots=3)
        for i in range(5):
            with tracer.span(f"op-{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["op-2", "op-3", "op-4"]

    def test_span_finished_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        root = tracer.last_root()
        assert root.name == "boom"
        assert root.is_finished
        assert tracer.current() is None

    def test_threads_build_independent_trees(self):
        tracer = Tracer()
        seen = {}

        def worker(tag):
            with tracer.span(f"root-{tag}"):
                seen[tag] = tracer.current().name

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {0: "root-0", 1: "root-1", 2: "root-2"}
        assert len(tracer.roots()) == 3

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.last_root() is None


class TestSpanErrorMarking:
    def test_exception_marks_span_errored(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad input")
        root = tracer.last_root()
        assert root.attributes["error"] is True
        assert root.attributes["error_type"] == "ValueError"
        assert root.attributes["error_message"] == "bad input"

    def test_erroring_child_closed_and_stack_restored(self):
        """The satellite fix: an exception inside a nested span must not
        leak the child onto the stack — the next span on this context
        starts from the restored parent."""
        tracer = Tracer()
        with tracer.span("root") as root:
            with pytest.raises(RuntimeError):
                with tracer.span("child"):
                    raise RuntimeError("x")
            assert tracer.current() is root
            with tracer.span("sibling"):
                pass
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert all(c.is_finished for c in root.children)
        assert tracer.current() is None

    def test_dangling_child_does_not_leak_past_parent_exit(self):
        """A child opened but never exited (no `with`) cannot corrupt
        the stack: token-based restore reinstates the outer stack when
        the parent closes."""
        tracer = Tracer()
        with tracer.span("root"):
            scope = tracer.span("dangling")
            scope.__enter__()
            # parent exits with the child still open
        assert tracer.current() is None
        with tracer.span("next-root"):
            assert tracer.current().name == "next-root"


class TestTraceContext:
    def test_generated_id_is_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)  # parses as hex

    def test_sanitize_passes_clean_ids(self):
        assert sanitize_trace_id("req-1.2_3") == "req-1.2_3"

    def test_sanitize_strips_unsafe_and_truncates(self):
        assert sanitize_trace_id("a b\nc\x00d!") == "abcd"
        long = "x" * 200
        assert sanitize_trace_id(long) == "x" * MAX_TRACE_ID_LEN

    def test_sanitize_rejects_unusable(self):
        assert sanitize_trace_id(None) is None
        assert sanitize_trace_id("") is None
        assert sanitize_trace_id("\x00\x01!!") is None
        assert sanitize_trace_id(42) is None

    def test_trace_scope_installs_and_restores(self):
        assert current_trace() is None
        with trace_scope(TraceContext("t-1")) as ctx:
            assert current_trace() is ctx
            annotate_trace("cache", "hit")
        assert current_trace() is None
        assert ctx.annotations == {"cache": "hit"}

    def test_annotate_outside_request_is_noop(self):
        annotate_trace("ignored", 1)  # must not raise

    def test_root_span_stamped_with_trace_id(self):
        tracer = Tracer()
        with trace_scope(TraceContext("t-42")):
            with tracer.span("root") as root:
                with tracer.span("child") as child:
                    pass
        assert root.attributes["trace_id"] == "t-42"
        assert "trace_id" not in child.attributes

    def test_no_stamp_without_context(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        assert "trace_id" not in root.attributes


class TestThreadPoolPropagation:
    def test_copied_context_attaches_to_submitting_tree(self):
        """A pool task running under copy_context() extends the
        submitting request's open span instead of starting a new root
        — the mechanism behind reformulate_many's fan-out tracing."""
        tracer = Tracer()
        with trace_scope(TraceContext("batch-1")):
            with tracer.span("batch") as batch_span:

                def solve(i):
                    with tracer.span(f"decode-{i}"):
                        annotate_trace(f"task-{i}", True)
                    return i

                # one copy per task, made on the SUBMITTING thread —
                # copying inside the pool task would capture the pool
                # thread's empty context instead
                contexts = [contextvars.copy_context() for _ in range(4)]
                with ThreadPoolExecutor(max_workers=2) as pool:
                    results = list(pool.map(
                        lambda task: task[0].run(solve, task[1]),
                        zip(contexts, range(4)),
                    ))
            ctx = current_trace()
        assert results == [0, 1, 2, 3]
        names = sorted(c.name for c in batch_span.children)
        assert names == [f"decode-{i}" for i in range(4)]
        # annotations land on the shared TraceContext object
        assert all(ctx.annotations[f"task-{i}"] for i in range(4))
        # no orphan roots: the only retained root is the batch span
        assert [s.name for s in tracer.roots()] == ["batch"]

    def test_fresh_thread_still_starts_empty(self):
        tracer = Tracer()
        leaked = {}

        def probe():
            leaked["current"] = tracer.current()

        with tracer.span("root"):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert leaked["current"] is None


class TestModuleSwitch:
    def test_disabled_returns_noops(self):
        obs.disable()
        assert obs.span("x") is NOOP_SPAN
        assert obs.counter("c_total") is obs.NOOP_METRIC
        assert obs.gauge("g") is obs.NOOP_METRIC
        assert obs.histogram("h") is obs.NOOP_METRIC

    def test_noop_span_is_inert_context_manager(self):
        with NOOP_SPAN as span:
            span.set_attribute("ignored", 1)

    def test_enabled_records(self):
        obs.reset()
        with obs.enabled():
            with obs.span("op", k=1) as span:
                span.set_attribute("done", True)
            obs.counter("c_total", "help").inc(3)
        assert not obs.is_enabled()
        root = obs.tracer().last_root()
        assert root.name == "op"
        assert root.attributes == {"k": 1, "done": True}
        assert obs.registry().get("c_total").value == 3.0
        obs.reset()

    def test_enabled_restores_previous_state(self):
        obs.enable()
        try:
            with obs.enabled(False):
                assert not obs.is_enabled()
            assert obs.is_enabled()
        finally:
            obs.disable()

    def test_reset_clears_registry_and_spans_not_switch(self):
        with obs.enabled():
            obs.counter("c_total").inc()
            with obs.span("op"):
                pass
            obs.reset()
            assert obs.is_enabled()
            assert len(obs.registry()) == 0
            assert obs.tracer().last_root() is None
        obs.reset()
