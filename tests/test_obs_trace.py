"""Unit tests for repro.obs.trace and the module-level switch."""

import threading

import pytest

from repro import obs
from repro.obs.trace import NOOP_SPAN, Span, Tracer


class TestSpan:
    def test_attributes_from_kwargs_and_set(self):
        span = Span("op", {"k": 5})
        span.set_attribute("result", "ok")
        assert span.attributes == {"k": 5, "result": "ok"}

    def test_finish_is_idempotent(self):
        span = Span("op")
        span.finish()
        first_end = span.end_time
        span.finish()
        assert span.end_time == first_end

    def test_duration_while_open_and_after_finish(self):
        span = Span("op")
        assert not span.is_finished
        assert span.duration >= 0.0
        span.finish()
        assert span.is_finished
        frozen = span.duration
        assert span.duration == frozen


class TestTracer:
    def test_nesting_follows_lexical_structure(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a") as a:
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in a.children] == ["grandchild"]
        assert root.is_finished

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("root") as root:
            assert tracer.current() is root
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is root
        assert tracer.current() is None

    def test_only_roots_retained(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.roots()] == ["root"]
        assert tracer.last_root().name == "root"

    def test_root_ring_is_bounded(self):
        tracer = Tracer(keep_roots=3)
        for i in range(5):
            with tracer.span(f"op-{i}"):
                pass
        assert [s.name for s in tracer.roots()] == ["op-2", "op-3", "op-4"]

    def test_span_finished_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        root = tracer.last_root()
        assert root.name == "boom"
        assert root.is_finished
        assert tracer.current() is None

    def test_threads_build_independent_trees(self):
        tracer = Tracer()
        seen = {}

        def worker(tag):
            with tracer.span(f"root-{tag}"):
                seen[tag] = tracer.current().name

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {0: "root-0", 1: "root-1", 2: "root-2"}
        assert len(tracer.roots()) == 3

    def test_reset_drops_roots(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.last_root() is None


class TestModuleSwitch:
    def test_disabled_returns_noops(self):
        obs.disable()
        assert obs.span("x") is NOOP_SPAN
        assert obs.counter("c_total") is obs.NOOP_METRIC
        assert obs.gauge("g") is obs.NOOP_METRIC
        assert obs.histogram("h") is obs.NOOP_METRIC

    def test_noop_span_is_inert_context_manager(self):
        with NOOP_SPAN as span:
            span.set_attribute("ignored", 1)

    def test_enabled_records(self):
        obs.reset()
        with obs.enabled():
            with obs.span("op", k=1) as span:
                span.set_attribute("done", True)
            obs.counter("c_total", "help").inc(3)
        assert not obs.is_enabled()
        root = obs.tracer().last_root()
        assert root.name == "op"
        assert root.attributes == {"k": 1, "done": True}
        assert obs.registry().get("c_total").value == 3.0
        obs.reset()

    def test_enabled_restores_previous_state(self):
        obs.enable()
        try:
            with obs.enabled(False):
                assert not obs.is_enabled()
            assert obs.is_enabled()
        finally:
            obs.disable()

    def test_reset_clears_registry_and_spans_not_switch(self):
        with obs.enabled():
            obs.counter("c_total").inc()
            with obs.span("op"):
                pass
            obs.reset()
            assert obs.is_enabled()
            assert len(obs.registry()) == 0
            assert obs.tracer().last_root() is None
        obs.reset()
