"""Shared fixtures: a hand-checkable toy database and a small corpus.

The toy database is small enough that every expected value in the tests
can be verified by eye; the synthesized corpus exercises realistic scale.
Both are session-scoped — they are immutable inputs, and the offline
structures built on them (index, graph, extractors) are expensive.
"""

from __future__ import annotations

import pytest

from repro.data.dblp_synth import SynthConfig, synthesize_dblp
from repro.graph.closeness import ClosenessExtractor
from repro.graph.cooccurrence import CooccurrenceSimilarity
from repro.graph.similarity import SimilarityExtractor
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.search.keyword import KeywordSearchEngine
from repro.storage.database import Database
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.storage.tuplegraph import TupleGraph


def toy_schema() -> DatabaseSchema:
    """conferences / authors / papers / writes, as in Figure 1."""
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "conferences",
        [Column("cid", "int", nullable=False), Column("name", "text")],
        primary_key="cid",
        atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "authors",
        [Column("aid", "int", nullable=False), Column("name", "text")],
        primary_key="aid",
        atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "papers",
        [
            Column("pid", "int", nullable=False),
            Column("title", "text"),
            Column("cid", "int"),
            Column("year", "int"),
        ],
        primary_key="pid",
        text_fields=["title"],
    ))
    schema.add_table(TableSchema(
        "writes",
        [
            Column("wid", "int", nullable=False),
            Column("aid", "int"),
            Column("pid", "int"),
        ],
        primary_key="wid",
        text_fields=[],
    ))
    schema.add_foreign_key(ForeignKey("papers", "cid", "conferences", "cid"))
    schema.add_foreign_key(ForeignKey("writes", "aid", "authors", "aid"))
    schema.add_foreign_key(ForeignKey("writes", "pid", "papers", "pid"))
    return schema


def build_toy_database() -> Database:
    """4 papers, 3 authors, 2 conferences — every fact hand-checkable.

    Layout (all in lowercase, analyzer-friendly):

    * vldb hosts p0 ("probabilistic query answering"),
                 p1 ("uncertain data management")
    * icdm hosts p2 ("frequent pattern mining"),
                 p3 ("probabilistic pattern discovery")
    * ann wrote p0 and p1 (so "probabilistic" and "uncertain" share an
      author and a venue but never a title)
    * bob wrote p2; eve wrote p3; bob and eve never collaborate but share
      the venue icdm and the word "pattern".
    """
    database = Database(toy_schema())
    database.insert("conferences", {"cid": 0, "name": "vldb"})
    database.insert("conferences", {"cid": 1, "name": "icdm"})
    database.insert("authors", {"aid": 0, "name": "ann"})
    database.insert("authors", {"aid": 1, "name": "bob"})
    database.insert("authors", {"aid": 2, "name": "eve"})
    database.insert("papers", {
        "pid": 0, "title": "probabilistic query answering", "cid": 0,
        "year": 2010,
    })
    database.insert("papers", {
        "pid": 1, "title": "uncertain data management", "cid": 0,
        "year": 2011,
    })
    database.insert("papers", {
        "pid": 2, "title": "frequent pattern mining", "cid": 1,
        "year": 2009,
    })
    database.insert("papers", {
        "pid": 3, "title": "probabilistic pattern discovery", "cid": 1,
        "year": 2012,
    })
    database.insert("writes", {"wid": 0, "aid": 0, "pid": 0})
    database.insert("writes", {"wid": 1, "aid": 0, "pid": 1})
    database.insert("writes", {"wid": 2, "aid": 1, "pid": 2})
    database.insert("writes", {"wid": 3, "aid": 2, "pid": 3})
    return database


@pytest.fixture(scope="session")
def toy_db() -> Database:
    return build_toy_database()


@pytest.fixture(scope="session")
def toy_index(toy_db) -> InvertedIndex:
    return InvertedIndex(toy_db).build()


@pytest.fixture(scope="session")
def toy_graph(toy_db, toy_index) -> TATGraph:
    return TATGraph(toy_db, toy_index)


@pytest.fixture(scope="session")
def toy_tuple_graph(toy_db) -> TupleGraph:
    return TupleGraph(toy_db)


@pytest.fixture(scope="session")
def toy_search(toy_tuple_graph, toy_index) -> KeywordSearchEngine:
    return KeywordSearchEngine(toy_tuple_graph, toy_index)


@pytest.fixture(scope="session")
def toy_similarity(toy_graph) -> SimilarityExtractor:
    return SimilarityExtractor(toy_graph)


@pytest.fixture(scope="session")
def toy_closeness(toy_graph) -> ClosenessExtractor:
    return ClosenessExtractor(toy_graph, beam_width=None)


@pytest.fixture(scope="session")
def toy_cooccurrence(toy_graph) -> CooccurrenceSimilarity:
    return CooccurrenceSimilarity(toy_graph)


@pytest.fixture(scope="session")
def small_corpus():
    """A small but realistic synthesized corpus (deterministic)."""
    return synthesize_dblp(
        SynthConfig(n_authors=80, n_papers=300, n_conferences=10, seed=13)
    )


@pytest.fixture(scope="session")
def small_db(small_corpus) -> Database:
    return small_corpus.database


@pytest.fixture(scope="session")
def small_index(small_db) -> InvertedIndex:
    return InvertedIndex(small_db).build()


@pytest.fixture(scope="session")
def small_graph(small_db, small_index) -> TATGraph:
    return TATGraph(small_db, small_index)
