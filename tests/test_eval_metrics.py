"""Unit tests for repro.eval.metrics."""

import pytest

from repro.core.scoring import ScoredQuery
from repro.errors import ReproError
from repro.eval.metrics import (
    QualityReport,
    ResultQualityEvaluator,
    mean_precision_at,
    merge_reports,
    precision_at,
    precision_curve,
)


def scored(terms):
    return ScoredQuery(terms=tuple(terms), score=0.1,
                       state_path=tuple(range(len(terms))))


class TestPrecision:
    def test_precision_at_basic(self):
        assert precision_at([True, False, True, True], 4) == 0.75

    def test_precision_at_prefix(self):
        assert precision_at([True, False, True, True], 2) == 0.5

    def test_short_list_counts_missing_as_miss(self):
        assert precision_at([True], 5) == 0.2

    def test_n_validation(self):
        with pytest.raises(ReproError):
            precision_at([True], 0)

    def test_mean_precision(self):
        assert mean_precision_at([[True], [False]], 1) == 0.5

    def test_mean_precision_empty(self):
        with pytest.raises(ReproError):
            mean_precision_at([], 1)

    def test_precision_curve_positions(self):
        curve = precision_curve([[True] * 10], (1, 3, 5, 7, 10))
        assert set(curve) == {1, 3, 5, 7, 10}
        assert all(v == 1.0 for v in curve.values())

    def test_precision_curve_decreasing_for_front_loaded(self):
        verdicts = [[True, True, False, False, False]]
        curve = precision_curve(verdicts, (1, 3, 5))
        assert curve[1] >= curve[3] >= curve[5]


class TestMergeReports:
    def test_averages(self):
        merged = merge_reports([
            QualityReport("tat", 10.0, 1.0),
            QualityReport("tat", 20.0, 2.0),
        ])
        assert merged.result_size == 15.0
        assert merged.query_distance == 1.5

    def test_rejects_mixed_methods(self):
        with pytest.raises(ReproError):
            merge_reports([
                QualityReport("tat", 1, 1), QualityReport("rank", 1, 1),
            ])

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            merge_reports([])


class TestResultQualityEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self, toy_graph, toy_search):
        return ResultQualityEvaluator(toy_graph, toy_search)

    def test_result_size_counts_search_hits(self, evaluator):
        queries = [scored(["pattern"])]
        assert evaluator.result_size(queries) == 2.0

    def test_result_size_empty_list(self, evaluator):
        assert evaluator.result_size([]) == 0.0

    def test_query_distance_identity_zero(self, evaluator):
        assert evaluator.query_distance(
            ["probabilistic"], [scored(["probabilistic"])]
        ) == 0.0

    def test_query_distance_cooccurring_pair(self, evaluator):
        # probabilistic -> query: distance 2 in the TAT graph
        assert evaluator.query_distance(
            ["probabilistic"], [scored(["query"])]
        ) == 2.0

    def test_query_distance_venue_mates(self, evaluator):
        assert evaluator.query_distance(
            ["probabilistic"], [scored(["uncertain"])]
        ) == 4.0

    def test_query_distance_unknown_term_far(self, evaluator):
        distance = evaluator.query_distance(
            ["probabilistic"], [scored(["zzz"])]
        )
        assert distance == evaluator.distance.max_depth + 1

    def test_query_distance_void_skipped(self, evaluator):
        assert evaluator.query_distance(
            ["probabilistic", "query"],
            [scored(["probabilistic", None])],
        ) == 0.0

    def test_report_combines_metrics(self, evaluator):
        report = evaluator.report(
            "tat", ["probabilistic"], [scored(["query"])]
        )
        assert report.method == "tat"
        assert report.result_size >= 1
        assert report.query_distance == 2.0

    def test_empty_queries_report(self, evaluator):
        report = evaluator.report("tat", ["probabilistic"], [])
        assert report.result_size == 0.0
        assert report.query_distance == 0.0
