"""Unit tests for repro.core.hmm."""

import numpy as np
import pytest

from repro.core.candidates import CandidateListBuilder, CandidateState, StateKind
from repro.core.hmm import IndexFrequency, ReformulationHMM
from repro.errors import ReformulationError


class DictCloseness:
    """Closeness stub driven by an explicit pair dict."""

    def __init__(self, pairs):
        self.pairs = pairs

    def closeness(self, a, b):
        return self.pairs.get((a, b), self.pairs.get((b, a), 0.0))


class ConstFrequency:
    def __init__(self, freqs=None):
        self.freqs = freqs or {}

    def frequency(self, node_id):
        return self.freqs.get(node_id, 1.0)


def sim_state(node_id, text, sim):
    return CandidateState(StateKind.SIMILAR, node_id, text, sim)


def tiny_states():
    return [
        [sim_state(0, "a0", 0.6), sim_state(1, "a1", 0.4)],
        [sim_state(2, "b0", 0.9), sim_state(3, "b1", 0.1)],
    ]


def build_tiny(lam=1.0, closeness=None, freqs=None):
    return ReformulationHMM.build(
        query=["qa", "qb"],
        states=tiny_states(),
        closeness=closeness or DictCloseness({
            (0, 2): 1.0, (0, 3): 0.5, (1, 2): 0.25, (1, 3): 0.0,
        }),
        frequency=ConstFrequency(freqs),
        smoothing_lambda=lam,
    )


class TestBuild:
    def test_shapes(self):
        hmm = build_tiny()
        assert hmm.length == 2
        assert hmm.pi.shape == (2,)
        assert [e.shape for e in hmm.emissions] == [(2,), (2,)]
        assert hmm.transitions[0].shape == (2, 2)

    def test_pi_frequency_proportional(self):
        hmm = build_tiny(freqs={0: 3.0, 1: 1.0})
        assert hmm.pi.tolist() == [0.75, 0.25]

    def test_emissions_normalized(self):
        hmm = build_tiny()
        for e in hmm.emissions:
            assert e.sum() == pytest.approx(1.0)

    def test_emissions_proportional_to_sim(self):
        hmm = build_tiny(lam=1.0)
        assert hmm.emissions[0][0] == pytest.approx(0.6)
        assert hmm.emissions[1][0] == pytest.approx(0.9)

    def test_transitions_from_closeness(self):
        hmm = build_tiny(lam=1.0)
        assert hmm.transitions[0][0, 0] == pytest.approx(1.0)
        assert hmm.transitions[0][1, 1] == pytest.approx(0.0)

    def test_smoothing_lifts_zero_transition(self):
        hmm = build_tiny(lam=0.8)
        assert hmm.transitions[0][1, 1] > 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReformulationError):
            ReformulationHMM.build(
                query=["one"],
                states=tiny_states(),
                closeness=DictCloseness({}),
                frequency=ConstFrequency(),
            )

    def test_empty_position_rejected(self):
        with pytest.raises(ReformulationError):
            ReformulationHMM.build(
                query=["a", "b"],
                states=[tiny_states()[0], []],
                closeness=DictCloseness({}),
                frequency=ConstFrequency(),
            )

    def test_search_space(self):
        assert build_tiny().search_space == 4

    def test_repeated_node_transition_zero(self):
        """The same term in adjacent positions gets closeness 0."""
        states = [
            [sim_state(0, "x", 1.0)],
            [sim_state(0, "x", 1.0)],
        ]
        hmm = ReformulationHMM.build(
            query=["qa", "qb"],
            states=states,
            closeness=DictCloseness({(0, 0): 9.0}),
            frequency=ConstFrequency(),
            smoothing_lambda=1.0,
        )
        assert hmm.transitions[0][0, 0] == 0.0

    def test_void_transition_gets_floor(self):
        states = [
            [sim_state(0, "x", 1.0)],
            [CandidateState(StateKind.VOID, None, None, 1e-4)],
        ]
        hmm = ReformulationHMM.build(
            query=["qa", "qb"],
            states=states,
            closeness=DictCloseness({}),
            frequency=ConstFrequency(),
            smoothing_lambda=1.0,
            void_closeness=0.001,
        )
        assert hmm.transitions[0][0, 0] == pytest.approx(0.001)

    def test_unknown_term_transition_zero_raw(self):
        states = [
            [sim_state(None, "mystery", 1.0)],
            [sim_state(2, "b0", 1.0)],
        ]
        hmm = ReformulationHMM.build(
            query=["qa", "qb"],
            states=states,
            closeness=DictCloseness({}),
            frequency=ConstFrequency(),
            smoothing_lambda=1.0,
        )
        assert hmm.transitions[0][0, 0] == 0.0


class TestScoring:
    def test_path_score_eq10(self):
        hmm = build_tiny(lam=1.0, freqs={0: 1.0, 1: 1.0})
        # path (0, 0): pi=0.5, B0=0.6, A=1.0, B1=0.9
        assert hmm.path_score([0, 0]) == pytest.approx(0.5 * 0.6 * 1.0 * 0.9)

    def test_path_length_validated(self):
        with pytest.raises(ReformulationError):
            build_tiny().path_score([0])

    def test_scored_query_materialization(self):
        hmm = build_tiny()
        q = hmm.scored_query([0, 1])
        assert q.terms == ("a0", "b1")
        assert q.state_path == (0, 1)
        assert q.score == pytest.approx(hmm.path_score([0, 1]))

    def test_identity_path_detection(self):
        states = [
            [sim_state(0, "qa", 1.0), sim_state(1, "other", 0.5)],
            [sim_state(2, "qb", 1.0)],
        ]
        hmm = ReformulationHMM.build(
            query=["qa", "qb"],
            states=states,
            closeness=DictCloseness({}),
            frequency=ConstFrequency(),
        )
        assert hmm.is_identity_path([0, 0])
        assert not hmm.is_identity_path([1, 0])


class TestIndexFrequency:
    def test_uses_collection_tf(self, toy_graph):
        freq = IndexFrequency(toy_graph)
        node_id = toy_graph.resolve_text_one("probabilistic")
        assert freq.frequency(node_id) == 2.0

    def test_tuple_node_gets_one(self, toy_graph):
        freq = IndexFrequency(toy_graph)
        node_id = toy_graph.tuple_node_id(("papers", 0))
        assert freq.frequency(node_id) == 1.0

    def test_single_position_query(self):
        hmm = ReformulationHMM.build(
            query=["solo"],
            states=[tiny_states()[0]],
            closeness=DictCloseness({}),
            frequency=ConstFrequency(),
        )
        assert hmm.length == 1
        assert hmm.transitions == []
        assert hmm.path_score([1]) == pytest.approx(
            float(hmm.pi[1] * hmm.emissions[0][1])
        )
