"""Golden regression tests for the relation store formats.

``tests/golden/relations_v1.json`` is a checked-in format-version-1 store
built from the toy corpus (plus one legacy raw-piped key, the
pre-escaping v1 idiom); ``expected_topk.json`` pins the store-backed
top-k suggestions for ten queries.  Together they freeze

* the v1 on-disk format and its back-compat load path,
* the store-backed reformulation output end to end, and
* the :class:`ReproError` messages of every load failure mode.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.index.inverted import FieldTerm
from repro.offline import OfflinePrecomputer, TermRelationStore
from repro.offline_store import migrate_v1_to_v2

GOLDEN = Path(__file__).parent / "golden"
V1_FIXTURE = GOLDEN / "relations_v1.json"
EXPECTED = json.loads((GOLDEN / "expected_topk.json").read_text())


@pytest.fixture(scope="module")
def golden_store(toy_graph):
    return TermRelationStore.load(V1_FIXTURE, toy_graph)


@pytest.fixture(scope="module")
def golden_reformulator(toy_graph, golden_store):
    return Reformulator(
        toy_graph,
        ReformulatorConfig(n_candidates=5),
        similarity=golden_store,
        closeness=golden_store,
    )


class TestV1BackCompat:
    def test_loads(self, golden_store, toy_index):
        # vocabulary terms + the injected legacy key
        assert len(golden_store) == toy_index.vocabulary_size() + 1

    def test_legacy_raw_piped_key_parses(self, golden_store):
        legacy = FieldTerm(("papers", "title"), "odd|piped term")
        assert legacy in golden_store
        assert any(t == legacy for t in golden_store.terms())

    def test_migrates_to_v2(self, toy_graph, tmp_path):
        migrated = migrate_v1_to_v2(
            V1_FIXTURE, tmp_path / "v2", toy_graph, n_shards=4
        )
        assert len(migrated) == len(
            TermRelationStore.load(V1_FIXTURE, toy_graph)
        )
        assert migrated.build_info()["migrated_from"] == str(V1_FIXTURE)


class TestGoldenTopK:
    @pytest.mark.parametrize("query", sorted(EXPECTED), ids=str)
    def test_fixture_backed_topk(self, golden_reformulator, query):
        got = [
            (s.text, s.score)
            for s in golden_reformulator.reformulate(query.split(), k=5)
        ]
        expected = EXPECTED[query]
        assert [t for t, _ in got] == [t for t, _ in expected]
        for (_, a), (_, b) in zip(got, expected):
            assert a == pytest.approx(b, rel=1e-9)

    def test_freshly_built_store_matches_golden(self, toy_graph):
        """The current batched pipeline reproduces the pinned output."""
        precomputer = OfflinePrecomputer(
            toy_graph,
            closeness=ClosenessExtractor(toy_graph, beam_width=None),
            n_similar=8,
            closeness_top=30,
        )
        store = precomputer.build_store(batch_size=16)
        reformulator = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=5),
            similarity=store,
            closeness=store,
        )
        for query, expected in EXPECTED.items():
            got = [s.text for s in reformulator.reformulate(query.split(), k=5)]
            assert got == [t for t, _ in expected], query


class TestErrorMessages:
    """The load failure modes keep their actionable messages."""

    def test_missing_file(self, toy_graph, tmp_path):
        with pytest.raises(ReproError, match="cannot load term relations"):
            TermRelationStore.load(tmp_path / "nope.json", toy_graph)

    def test_missing_manifest(self, toy_graph, tmp_path):
        empty = tmp_path / "empty-store"
        empty.mkdir()
        with pytest.raises(ReproError, match="cannot load term relations"):
            TermRelationStore.load(empty, toy_graph)

    def test_unsupported_version(self, toy_graph, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text(json.dumps({"format_version": 99, "terms": {}}))
        with pytest.raises(
            ReproError, match="unsupported format version 99"
        ):
            TermRelationStore.load(path, toy_graph)

    def test_manifest_missing_shard_table(self, toy_graph, tmp_path):
        root = tmp_path / "broken"
        root.mkdir()
        (root / "manifest.json").write_text(
            json.dumps({"format_version": 2, "n_terms": 0})
        )
        with pytest.raises(ReproError, match="shard table"):
            TermRelationStore.load(root, toy_graph)

    def test_shard_checksum_mismatch(self, toy_graph, tmp_path):
        migrated = migrate_v1_to_v2(
            V1_FIXTURE, tmp_path / "v2", toy_graph, n_shards=2
        )
        shard = migrated.root / migrated._shard_meta[0]["file"]
        shard.write_bytes(shard.read_bytes() + b" ")
        fresh = TermRelationStore.load(migrated.root, toy_graph)
        with pytest.raises(ReproError, match="checksum mismatch"):
            fresh._load_shard(0)

    def test_missing_shard_file(self, toy_graph, tmp_path):
        migrated = migrate_v1_to_v2(
            V1_FIXTURE, tmp_path / "v2", toy_graph, n_shards=2
        )
        (migrated.root / migrated._shard_meta[1]["file"]).unlink()
        fresh = TermRelationStore.load(migrated.root, toy_graph)
        # the intact shard still serves; only the missing one raises
        assert fresh._load_shard(0)
        with pytest.raises(ReproError, match="cannot load term relations"):
            fresh._load_shard(1)

    def test_sharded_store_is_read_only(self, toy_graph, tmp_path):
        migrated = migrate_v1_to_v2(
            V1_FIXTURE, tmp_path / "v2", toy_graph, n_shards=2
        )
        with pytest.raises(ReproError, match="read-only"):
            migrated.put(FieldTerm(("papers", "title"), "x"), [], {})


class TestLaziness:
    """Opening a v2 store must not read any shard file."""

    def test_open_reads_manifest_only(self, toy_graph, tmp_path):
        migrated = migrate_v1_to_v2(
            V1_FIXTURE, tmp_path / "v2", toy_graph, n_shards=4
        )
        # reopen fresh, then delete every shard: the manifest alone
        # must be enough to open and size the store
        root = tmp_path / "copy"
        shutil.copytree(migrated.root, root)
        for meta in migrated._shard_meta:
            (root / meta["file"]).unlink()
        store = TermRelationStore.load(root, toy_graph)
        assert len(store) == len(migrated)
        assert store.cache_stats() == {
            "hits": 0, "misses": 0, "resident_shards": 0
        }

    def test_lru_eviction_and_counters(self, toy_graph, tmp_path):
        from repro.offline_store import ShardedTermRelationStore

        migrate_v1_to_v2(V1_FIXTURE, tmp_path / "v2", toy_graph, n_shards=4)
        store = ShardedTermRelationStore.load(
            tmp_path / "v2", toy_graph, cache_shards=2
        )
        for index in (0, 1, 2, 3, 0):
            store._load_shard(index)
        stats = store.cache_stats()
        assert stats["resident_shards"] == 2
        assert stats["misses"] == 5  # shard 0 was evicted before its reuse
        store._load_shard(3)
        assert store.shard_hits == 1
        assert 0 < store.hit_rate() < 1
