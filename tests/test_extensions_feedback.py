"""Unit tests for repro.extensions.feedback."""

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.core.scoring import ScoredQuery
from repro.errors import ReproError
from repro.extensions.feedback import FeedbackAdaptor
from repro.graph.closeness import ClosenessExtractor
from repro.graph.similarity import SimilarityExtractor
from repro.index.inverted import FieldTerm

TITLE = ("papers", "title")


def scored(terms):
    return ScoredQuery(
        terms=tuple(terms), score=0.1, state_path=tuple(range(len(terms)))
    )


@pytest.fixture()
def adaptor(toy_graph):
    return FeedbackAdaptor(
        toy_graph,
        similarity=SimilarityExtractor(toy_graph),
        closeness=ClosenessExtractor(toy_graph, beam_width=None),
    )


class TestValidation:
    def test_parameters(self, toy_graph, toy_similarity, toy_closeness):
        with pytest.raises(ReproError):
            FeedbackAdaptor(toy_graph, toy_similarity, toy_closeness,
                            learning_rate=0)
        with pytest.raises(ReproError):
            FeedbackAdaptor(toy_graph, toy_similarity, toy_closeness,
                            max_boost=1.0)
        with pytest.raises(ReproError):
            FeedbackAdaptor(toy_graph, toy_similarity, toy_closeness,
                            decay=0)


class TestLearning:
    def test_accept_boosts_similarity(self, adaptor, toy_graph):
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        uncertain = toy_graph.term_node_id(FieldTerm(TITLE, "uncertain"))
        before = adaptor.similarity(prob, uncertain)
        adaptor.record(
            ["probabilistic", "query"],
            scored(["uncertain", "data"]),
            accepted=True,
        )
        after = adaptor.similarity(prob, uncertain)
        assert after > before

    def test_reject_penalizes(self, adaptor, toy_graph):
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        pattern = toy_graph.term_node_id(FieldTerm(TITLE, "pattern"))
        before = adaptor.similarity(prob, pattern)
        adaptor.record(
            ["probabilistic"], scored(["pattern"]), accepted=False
        )
        assert adaptor.similarity(prob, pattern) < before

    def test_closeness_boosted_on_accept(self, adaptor, toy_graph):
        uncertain = toy_graph.term_node_id(FieldTerm(TITLE, "uncertain"))
        data = toy_graph.term_node_id(FieldTerm(TITLE, "data"))
        before = adaptor.closeness(uncertain, data)
        adaptor.record(
            ["probabilistic", "query"],
            scored(["uncertain", "data"]),
            accepted=True,
        )
        after = adaptor.closeness(uncertain, data)
        assert after > before
        # symmetric bump
        assert adaptor.closeness(data, uncertain) == pytest.approx(after)

    def test_boost_capped(self, adaptor, toy_graph):
        for _ in range(50):
            adaptor.record(
                ["probabilistic"], scored(["uncertain"]), accepted=True
            )
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        uncertain = toy_graph.term_node_id(FieldTerm(TITLE, "uncertain"))
        base = adaptor.base_similarity.similarity(prob, uncertain)
        assert adaptor.similarity(prob, uncertain) <= base * adaptor.max_boost + 1e-12

    def test_identity_terms_ignored(self, adaptor):
        adaptor.record(
            ["probabilistic", "query"],
            scored(["probabilistic", "answering"]),
            accepted=True,
        )
        # only one substitution pair + one adjacency pair (x2 sym)
        assert adaptor.boost_count <= 3

    def test_unknown_terms_ignored(self, adaptor):
        adaptor.record(["zzz"], scored(["yyy"]), accepted=True)
        assert adaptor.boost_count == 0

    def test_events_logged(self, adaptor):
        event = adaptor.record(
            ["probabilistic"], scored(["uncertain"]), accepted=True
        )
        assert adaptor.events[-1] is event
        assert event.accepted


class TestDecay:
    def test_decay_moves_toward_one(self, adaptor, toy_graph):
        adaptor.record(
            ["probabilistic"], scored(["uncertain"]), accepted=True
        )
        prob = toy_graph.term_node_id(FieldTerm(TITLE, "probabilistic"))
        uncertain = toy_graph.term_node_id(FieldTerm(TITLE, "uncertain"))
        boosted = adaptor.similarity(prob, uncertain)
        adaptor.decay_boosts()
        decayed = adaptor.similarity(prob, uncertain)
        base = adaptor.base_similarity.similarity(prob, uncertain)
        assert base < decayed < boosted

    def test_decay_eventually_clears(self, adaptor):
        adaptor.record(
            ["probabilistic"], scored(["uncertain"]), accepted=True
        )
        for _ in range(200):
            adaptor.decay_boosts()
        assert adaptor.boost_count == 0


class TestRanking:
    def test_accepted_candidate_climbs(self, toy_graph):
        """The end-to-end promise: clicks reorder the similar list."""
        adaptor = FeedbackAdaptor(
            toy_graph,
            similarity=SimilarityExtractor(toy_graph),
            closeness=ClosenessExtractor(toy_graph, beam_width=None),
            learning_rate=2.0,
        )
        before = [t for t, _s in adaptor.similar_terms("probabilistic", 8)]
        target = before[-1]
        for _ in range(3):
            adaptor.record(
                ["probabilistic"], scored([target]), accepted=True
            )
        after = [t for t, _s in adaptor.similar_terms("probabilistic", 8)]
        assert after.index(target) < before.index(target)

    def test_reformulator_over_adaptor(self, toy_graph):
        adaptor = FeedbackAdaptor(
            toy_graph,
            similarity=SimilarityExtractor(toy_graph),
            closeness=ClosenessExtractor(toy_graph, beam_width=None),
        )
        reformulator = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=5),
            similarity=adaptor,
            closeness=adaptor,
        )
        out = reformulator.reformulate(["probabilistic", "query"], k=3)
        assert out
