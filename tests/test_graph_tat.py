"""Unit tests for repro.graph.tat on the toy corpus."""

import pytest

from repro.errors import GraphError, UnknownNodeError
from repro.graph.nodes import NodeKind
from repro.graph.tat import TATGraph
from repro.index.inverted import FieldTerm, InvertedIndex

from tests.conftest import build_toy_database

TITLE = ("papers", "title")
CONF = ("conferences", "name")


class TestConstruction:
    def test_node_counts(self, toy_graph):
        stats = toy_graph.stats()
        assert stats["tuple_nodes"] == 13
        assert stats["term_nodes"] == 15
        assert stats["nodes"] == 28

    def test_edge_counts(self, toy_graph):
        # 12 FK edges + containment edges: 12 title-word slots + 2 conf
        # names + 3 author names = 17 (no repeated words in any tuple)
        assert toy_graph.n_edges == 12 + 17

    def test_rejects_bad_fk_weight(self, toy_db, toy_index):
        with pytest.raises(GraphError):
            TATGraph(toy_db, toy_index, fk_edge_weight=0.0)

    def test_containment_edge_weight_uses_idf(self, toy_db):
        index = InvertedIndex(toy_db).build()
        weighted = TATGraph(toy_db, index, idf_weighted_edges=True)
        plain = TATGraph(toy_db, index, idf_weighted_edges=False)
        term_id = plain.term_node_id(FieldTerm(TITLE, "uncertain"))
        tuple_id = plain.tuple_node_id(("papers", 1))
        plain_w = dict(plain.neighbors(term_id))[tuple_id]
        assert plain_w == 1.0  # tf = 1
        term_id_w = weighted.term_node_id(FieldTerm(TITLE, "uncertain"))
        tuple_id_w = weighted.tuple_node_id(("papers", 1))
        weighted_w = dict(weighted.neighbors(term_id_w))[tuple_id_w]
        assert weighted_w == pytest.approx(index.idf(FieldTerm(TITLE, "uncertain")))


class TestLookups:
    def test_term_node_id_roundtrip(self, toy_graph):
        term = FieldTerm(TITLE, "probabilistic")
        node_id = toy_graph.term_node_id(term)
        assert toy_graph.node(node_id).payload == term

    def test_tuple_node_id_roundtrip(self, toy_graph):
        node_id = toy_graph.tuple_node_id(("papers", 2))
        assert toy_graph.node(node_id).payload == ("papers", 2)

    def test_resolve_text(self, toy_graph):
        ids = toy_graph.resolve_text("probabilistic")
        assert len(ids) == 1
        assert toy_graph.node(ids[0]).text == "probabilistic"

    def test_resolve_text_unknown(self, toy_graph):
        assert toy_graph.resolve_text("zzz") == []

    def test_resolve_text_one_unknown_raises(self, toy_graph):
        with pytest.raises(UnknownNodeError):
            toy_graph.resolve_text_one("zzz")

    def test_resolve_text_one_prefers_frequent_field(self):
        db = build_toy_database()
        # make "vldb" also a title word, rarer than the conference name?
        # Here it appears once in titles and once as conference, ties are
        # broken deterministically by the field-term string.
        db.insert("papers", {"pid": 9, "title": "vldb retrospective",
                             "cid": 0, "year": 1})
        graph = TATGraph(db, InvertedIndex(db))
        node = graph.node(graph.resolve_text_one("vldb"))
        assert node.text == "vldb"

    def test_term_connects_to_containing_tuples(self, toy_graph):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "pattern"))
        neighbor_nodes = {
            toy_graph.node(n).payload for n, _w in toy_graph.neighbors(node_id)
        }
        assert neighbor_nodes == {("papers", 2), ("papers", 3)}


class TestClasses:
    def test_class_of_term(self, toy_graph):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "pattern"))
        assert toy_graph.class_of(node_id) == TITLE

    def test_class_of_tuple(self, toy_graph):
        node_id = toy_graph.tuple_node_id(("authors", 0))
        assert toy_graph.class_of(node_id) == "authors"

    def test_same_class_ids_contains_self(self, toy_graph):
        node_id = toy_graph.term_node_id(FieldTerm(TITLE, "pattern"))
        same = toy_graph.same_class_ids(node_id)
        assert node_id in same
        assert all(toy_graph.class_of(n) == TITLE for n in same)
        assert len(same) == 10

    def test_term_fields(self, toy_graph):
        assert TITLE in toy_graph.term_fields()
        assert CONF in toy_graph.term_fields()

    def test_all_nodes_have_a_kind(self, toy_graph):
        kinds = {toy_graph.node(i).kind for i in range(toy_graph.n_nodes)}
        assert kinds == {NodeKind.TUPLE, NodeKind.TERM}
