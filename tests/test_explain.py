"""Tests for explain mode: span coverage and score decomposition.

The load-bearing property is Eq 10 recombination: the per-position
factors (π, emission, transition) must multiply back to each
suggestion's score, so the decomposition is an audit of the actual
ranking rather than a parallel reimplementation of it.
"""

import math

import pytest

from repro.core.explain import (
    ExplainResult,
    explain_hmm_path,
)
from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.errors import ReformulationError
from repro.obs.export import span_to_dict


@pytest.fixture(scope="module")
def reformulator(toy_graph):
    return Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))


def span_names(root):
    names = []

    def walk(payload):
        names.append(payload["name"])
        for child in payload["children"]:
            walk(child)

    walk(span_to_dict(root))
    return names


class TestScoreDecomposition:
    @pytest.mark.parametrize(
        "algorithm", ["astar", "viterbi_topk", "brute_force"]
    )
    def test_recombines_to_score(self, reformulator, algorithm):
        result = reformulator.explain(
            ["probabilistic", "query"], k=5, algorithm=algorithm
        )
        assert len(result) >= 1
        for explanation in result.explanations:
            assert math.isclose(
                explanation.recombined_score,
                explanation.suggestion.score,
                rel_tol=1e-9,
            )

    def test_position_factor_conventions(self, reformulator):
        result = reformulator.explain(["probabilistic", "query"], k=3)
        for explanation in result.explanations:
            positions = explanation.positions
            assert [pb.position for pb in positions] == [0, 1]
            # π applies only at position 0, transitions only beyond it
            assert positions[1].pi == 1.0
            assert positions[0].transition == 1.0
            assert positions[0].keyword == "probabilistic"
            assert positions[1].keyword == "query"

    def test_rank_method_decomposes_to_similarities(self, toy_graph):
        reformulator = Reformulator(
            toy_graph,
            ReformulatorConfig(method="rank", n_candidates=6),
        )
        result = reformulator.explain(["probabilistic", "query"], k=3)
        assert result.algorithm == "rank"
        for explanation in result.explanations:
            for pb in explanation.positions:
                assert pb.pi == 1.0
                assert pb.transition == 1.0
            assert math.isclose(
                explanation.recombined_score,
                explanation.suggestion.score,
                rel_tol=1e-9,
            )

    def test_path_length_mismatch_rejected(self, reformulator):
        hmm = reformulator.build_hmm(["probabilistic", "query"])
        suggestion = reformulator.explain(
            ["probabilistic", "query"], k=1
        ).suggestions[0]
        bad = type(suggestion)(
            terms=suggestion.terms[:1],
            score=suggestion.score,
            state_path=suggestion.state_path[:1],
        )
        with pytest.raises(ReformulationError):
            explain_hmm_path(hmm, bad)


class TestExplainTrace:
    def test_span_tree_covers_pipeline_stages(self, reformulator):
        result = reformulator.explain(["probabilistic", "query"], k=3)
        names = span_names(result.trace)
        assert names[0] == "reformulate"
        for stage in ("parse", "candidates", "hmm_build", "decode",
                      "postprocess"):
            assert stage in names

    def test_trace_recorded_with_switch_off(self, reformulator):
        from repro import obs

        assert not obs.is_enabled()
        result = reformulator.explain(["probabilistic", "query"], k=2)
        assert result.trace is not None
        assert result.trace.is_finished

    def test_raw_string_query_is_parsed(self, reformulator):
        result = reformulator.explain("Probabilistic QUERY", k=2)
        assert result.query == ("probabilistic", "query")
        root = span_to_dict(result.trace)
        parse = next(
            c for c in root["children"] if c["name"] == "parse"
        )
        assert parse["attributes"]["raw"] == "Probabilistic QUERY"

    def test_empty_query_rejected(self, reformulator):
        with pytest.raises(ReformulationError):
            reformulator.explain("", k=2)

    def test_decode_span_has_astar_counters(self, reformulator):
        result = reformulator.explain(["probabilistic", "query"], k=3)
        root = span_to_dict(result.trace)
        decode = next(
            c for c in root["children"] if c["name"] == "decode"
        )
        assert decode["attributes"]["algorithm"] == "astar"
        assert decode["attributes"]["expanded"] >= 1
        assert decode["attributes"]["pushed"] >= decode["attributes"]["expanded"]


class TestExplainEntryPoints:
    def test_reformulate_explain_flag_delegates(self, reformulator):
        result = reformulator.reformulate(
            ["probabilistic", "query"], k=3, explain=True
        )
        assert isinstance(result, ExplainResult)
        plain = reformulator.reformulate(["probabilistic", "query"], k=3)
        assert [s.text for s in result.suggestions] == [
            q.text for q in plain
        ]
        assert [s.score for s in result.suggestions] == [
            q.score for q in plain
        ]

    def test_render_mentions_every_suggestion(self, reformulator):
        result = reformulator.explain(["probabilistic", "query"], k=3)
        text = result.render()
        assert text.startswith("trace:")
        for rank, suggestion in enumerate(result.suggestions, 1):
            assert f"[{rank}] {suggestion.text}" in text
        assert "emission" in text and "transition" in text
