"""Unit tests for repro.storage.schemaspec."""

import json

import pytest

from repro.errors import SchemaError
from repro.storage.schemaspec import (
    load_database,
    save_database,
    schema_from_spec,
    schema_to_spec,
)

from tests.conftest import build_toy_database, toy_schema


class TestSpecRoundtrip:
    def test_schema_roundtrip(self):
        original = toy_schema()
        rebuilt = schema_from_spec(schema_to_spec(original))
        assert set(rebuilt.tables) == set(original.tables)
        assert len(rebuilt.foreign_keys) == len(original.foreign_keys)
        papers = rebuilt.table("papers")
        assert papers.primary_key == "pid"
        assert papers.text_fields == ("title",)
        assert rebuilt.table("authors").atomic_fields == ("name",)

    def test_column_types_preserved(self):
        spec = schema_to_spec(toy_schema())
        rebuilt = schema_from_spec(spec)
        assert rebuilt.table("papers").column("year").type == "int"
        assert not rebuilt.table("papers").column("pid").nullable

    def test_missing_tables_key(self):
        with pytest.raises(SchemaError):
            schema_from_spec({})

    def test_missing_table_field(self):
        with pytest.raises(SchemaError):
            schema_from_spec({"tables": [{"name": "x"}]})

    def test_missing_fk_field(self):
        spec = schema_to_spec(toy_schema())
        spec["foreign_keys"] = [{"table": "papers"}]
        with pytest.raises(SchemaError):
            schema_from_spec(spec)

    def test_spec_is_json_serializable(self):
        json.dumps(schema_to_spec(toy_schema()))


class TestDatabaseRoundtrip:
    def test_save_and_load(self, tmp_path):
        db = build_toy_database()
        save_database(db, tmp_path / "corpus")
        loaded = load_database(tmp_path / "corpus")
        assert len(loaded) == len(db)
        assert loaded.table("papers").get(0)["title"] == (
            "probabilistic query answering"
        )
        loaded.check_integrity()

    def test_load_missing_schema(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database(tmp_path)

    def test_load_bad_schema_json(self, tmp_path):
        (tmp_path / "schema.json").write_text("{oops", encoding="utf-8")
        with pytest.raises(SchemaError):
            load_database(tmp_path)

    def test_load_enforces_integrity(self, tmp_path):
        db = build_toy_database()
        save_database(db, tmp_path / "corpus")
        # corrupt: point a paper at a missing conference
        csv_path = tmp_path / "corpus" / "papers.csv"
        text = csv_path.read_text().replace(
            "probabilistic query answering,0,", "probabilistic query answering,99,"
        )
        csv_path.write_text(text)
        with pytest.raises(Exception):
            load_database(tmp_path / "corpus")

    def test_missing_table_csv_loads_empty(self, tmp_path):
        db = build_toy_database()
        save_database(db, tmp_path / "corpus")
        (tmp_path / "corpus" / "writes.csv").unlink()
        loaded = load_database(tmp_path / "corpus")
        assert len(loaded.table("writes")) == 0

    def test_loaded_database_enforces_fks(self, tmp_path):
        from repro.errors import IntegrityError

        db = build_toy_database()
        save_database(db, tmp_path / "corpus")
        loaded = load_database(tmp_path / "corpus")
        with pytest.raises(IntegrityError):
            loaded.insert(
                "papers", {"pid": 99, "title": "x", "cid": 404, "year": 1}
            )

    def test_pipeline_over_loaded_database(self, tmp_path):
        from repro import Reformulator, ReformulatorConfig

        save_database(build_toy_database(), tmp_path / "corpus")
        loaded = load_database(tmp_path / "corpus")
        reformulator = Reformulator.from_database(
            loaded, ReformulatorConfig(n_candidates=5)
        )
        assert reformulator.reformulate(["probabilistic", "query"], k=3)
