"""Unit tests for repro.data.workloads."""

import pytest

from repro.data.workloads import WorkloadGenerator
from repro.errors import ReproError


@pytest.fixture(scope="module")
def generator(small_corpus) -> WorkloadGenerator:
    return WorkloadGenerator(small_corpus, seed=42)


class TestMixedQueries:
    def test_count(self, generator):
        assert len(generator.mixed_queries(10)) == 10

    def test_deterministic(self, small_corpus):
        a = WorkloadGenerator(small_corpus, seed=42).mixed_queries(10)
        b = WorkloadGenerator(small_corpus, seed=42).mixed_queries(10)
        assert a == b

    def test_seed_sensitivity(self, small_corpus):
        a = WorkloadGenerator(small_corpus, seed=42).mixed_queries(10)
        b = WorkloadGenerator(small_corpus, seed=43).mixed_queries(10)
        assert a != b

    def test_formats_rotate(self, generator):
        queries = generator.mixed_queries(10)
        anchor_fields = {q.fields[0] for q in queries}
        assert anchor_fields == {"title", "author", "conference"}

    def test_keywords_exist_in_corpus(self, generator, small_index):
        for wq in generator.mixed_queries(10):
            for kw in wq.keywords:
                assert small_index.lookup_text(kw), kw

    def test_no_duplicate_keywords(self, generator):
        for wq in generator.mixed_queries(20):
            assert len(set(wq.keywords)) == len(wq.keywords)

    def test_anchored_queries_are_cohesive_mostly(
        self, generator, small_corpus, small_index
    ):
        """Anchored sampling must produce mostly answerable queries."""
        from repro.search.keyword import KeywordSearchEngine
        from repro.storage.tuplegraph import TupleGraph

        search = KeywordSearchEngine(
            TupleGraph(small_corpus.database), small_index
        )
        queries = generator.mixed_queries(10)
        cohesive = sum(
            search.is_cohesive(list(q.keywords)) for q in queries
        )
        assert cohesive >= 8


class TestLengthVaried:
    def test_lengths_cycle(self, generator):
        queries = generator.length_varied_queries(16, min_len=1, max_len=8)
        lengths = [len(q) for q in queries]
        assert lengths == [1, 2, 3, 4, 5, 6, 7, 8] * 2

    def test_invalid_bounds(self, generator):
        with pytest.raises(ReproError):
            generator.length_varied_queries(10, min_len=3, max_len=2)

    def test_queries_of_length(self, generator):
        queries = generator.queries_of_length(4, 5)
        assert len(queries) == 5
        assert all(len(q) == 4 for q in queries)

    def test_fields_match_keywords(self, generator):
        for wq in generator.length_varied_queries(24):
            assert len(wq.fields) == len(wq.keywords)


class TestBestPaperQueries:
    def test_count_and_length(self, generator):
        queries = generator.best_paper_queries(19)
        assert len(queries) == 19
        assert all(1 <= len(q) <= 3 for q in queries)

    def test_keywords_from_titles(self, generator, small_corpus):
        from repro.index.analyzer import Analyzer

        analyzer = Analyzer()
        title_words = {
            w
            for row in small_corpus.database.table("papers").scan()
            for w in analyzer.tokenize(str(row["title"]))
        }
        for wq in generator.best_paper_queries(19):
            assert set(wq.keywords) <= title_words

    def test_too_many_requested(self, small_corpus):
        generator = WorkloadGenerator(small_corpus)
        with pytest.raises(ReproError):
            generator.best_paper_queries(count=10_000)

    def test_deterministic(self, small_corpus):
        a = WorkloadGenerator(small_corpus, seed=1).best_paper_queries(5)
        b = WorkloadGenerator(small_corpus, seed=1).best_paper_queries(5)
        assert a == b
