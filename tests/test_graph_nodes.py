"""Unit tests for repro.graph.nodes."""

import pytest

from repro.errors import UnknownNodeError
from repro.graph.nodes import Node, NodeKind, NodeRegistry
from repro.index.inverted import FieldTerm

TITLE = ("papers", "title")


def term(text: str) -> Node:
    return Node.for_term(FieldTerm(TITLE, text))


class TestNode:
    def test_tuple_node_class_is_table(self):
        node = Node.for_tuple(("papers", 3))
        assert node.kind is NodeKind.TUPLE
        assert node.node_class == "papers"
        assert node.text is None

    def test_term_node_class_is_field(self):
        node = term("xml")
        assert node.kind is NodeKind.TERM
        assert node.node_class == TITLE
        assert node.text == "xml"

    def test_str_forms(self):
        assert str(Node.for_tuple(("papers", 3))) == "papers#3"
        assert str(term("xml")) == "papers.title:xml"

    def test_equality_and_hash(self):
        assert term("xml") == term("xml")
        assert term("xml") != term("html")
        assert len({term("xml"), term("xml")}) == 1


class TestRegistry:
    def test_add_is_idempotent(self):
        reg = NodeRegistry()
        a = reg.add(term("xml"))
        b = reg.add(term("xml"))
        assert a == b and len(reg) == 1

    def test_ids_are_dense(self):
        reg = NodeRegistry()
        ids = [reg.add(term(t)) for t in ("a", "b", "c")]
        assert ids == [0, 1, 2]

    def test_roundtrip(self):
        reg = NodeRegistry()
        node = term("xml")
        node_id = reg.add(node)
        assert reg.node_of(node_id) == node
        assert reg.id_of(node) == node_id

    def test_unknown_node_raises(self):
        reg = NodeRegistry()
        with pytest.raises(UnknownNodeError):
            reg.id_of(term("missing"))

    def test_unknown_id_raises(self):
        reg = NodeRegistry()
        with pytest.raises(UnknownNodeError):
            reg.node_of(5)

    def test_get_id_returns_none(self):
        reg = NodeRegistry()
        assert reg.get_id(term("missing")) is None

    def test_contains(self):
        reg = NodeRegistry()
        reg.add(term("xml"))
        assert term("xml") in reg
        assert term("html") not in reg

    def test_ids_of_class(self):
        reg = NodeRegistry()
        t1 = reg.add(term("xml"))
        p1 = reg.add(Node.for_tuple(("papers", 0)))
        t2 = reg.add(term("html"))
        assert reg.ids_of_class(TITLE) == [t1, t2]
        assert reg.ids_of_class("papers") == [p1]
        assert reg.ids_of_class("nope") == []

    def test_kind_iterators(self):
        reg = NodeRegistry()
        t1 = reg.add(term("xml"))
        p1 = reg.add(Node.for_tuple(("papers", 0)))
        assert list(reg.term_ids()) == [t1]
        assert list(reg.tuple_ids()) == [p1]

    def test_classes(self):
        reg = NodeRegistry()
        reg.add(term("xml"))
        reg.add(Node.for_tuple(("papers", 0)))
        assert set(reg.classes()) == {TITLE, "papers"}

    def test_nodes_iterates_in_insertion_order(self):
        reg = NodeRegistry()
        nodes = [term("a"), Node.for_tuple(("papers", 1)), term("b")]
        for n in nodes:
            reg.add(n)
        assert list(reg.nodes()) == nodes
