"""Unit tests for repro.storage.csvio."""

import pytest

from repro.errors import SchemaError
from repro.storage.csvio import dump_table_csv, load_table_csv
from repro.storage.database import Database
from repro.storage.schema import Column, DatabaseSchema, TableSchema


@pytest.fixture()
def db() -> Database:
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "items",
        [
            Column("id", "int", nullable=False),
            Column("name", "text"),
            Column("price", "float"),
        ],
        primary_key="id",
    ))
    return Database(schema)


def write(path, text):
    path.write_text(text, encoding="utf-8")


class TestLoad:
    def test_load_with_header(self, db, tmp_path):
        f = tmp_path / "items.csv"
        write(f, "id,name,price\n1,apple,2.5\n2,pear,3.0\n")
        assert load_table_csv(db, "items", f) == 2
        assert db.table("items").get(1)["name"] == "apple"
        assert db.table("items").get(2)["price"] == 3.0

    def test_load_explicit_columns(self, db, tmp_path):
        f = tmp_path / "items.csv"
        write(f, "1,apple\n2,pear\n")
        n = load_table_csv(db, "items", f, columns=["id", "name"])
        assert n == 2
        assert db.table("items").get(2)["price"] is None

    def test_empty_cell_becomes_none(self, db, tmp_path):
        f = tmp_path / "items.csv"
        write(f, "id,name,price\n1,,\n")
        load_table_csv(db, "items", f)
        row = db.table("items").get(1)
        assert row["name"] is None and row["price"] is None

    def test_empty_file(self, db, tmp_path):
        f = tmp_path / "items.csv"
        write(f, "")
        assert load_table_csv(db, "items", f) == 0

    def test_bad_int_raises(self, db, tmp_path):
        f = tmp_path / "items.csv"
        write(f, "id,name,price\nnope,apple,1.0\n")
        with pytest.raises(SchemaError):
            load_table_csv(db, "items", f)

    def test_bad_float_raises(self, db, tmp_path):
        f = tmp_path / "items.csv"
        write(f, "id,name,price\n1,apple,cheap\n")
        with pytest.raises(SchemaError):
            load_table_csv(db, "items", f)

    def test_row_width_mismatch(self, db, tmp_path):
        f = tmp_path / "items.csv"
        write(f, "id,name,price\n1,apple\n")
        with pytest.raises(SchemaError):
            load_table_csv(db, "items", f)

    def test_tsv_delimiter(self, db, tmp_path):
        f = tmp_path / "items.tsv"
        write(f, "id\tname\tprice\n1\tapple\t2.5\n")
        assert load_table_csv(db, "items", f, delimiter="\t") == 1


class TestDump:
    def test_round_trip(self, db, tmp_path):
        db.insert("items", {"id": 1, "name": "apple", "price": 2.5})
        db.insert("items", {"id": 2, "name": None, "price": None})
        f = tmp_path / "out.csv"
        assert dump_table_csv(db, "items", f) == 2

        db2 = Database(db.schema)
        assert load_table_csv(db2, "items", f) == 2
        assert db2.table("items").get(1)["name"] == "apple"
        assert db2.table("items").get(2)["name"] is None

    def test_dump_header(self, db, tmp_path):
        f = tmp_path / "out.csv"
        dump_table_csv(db, "items", f)
        assert f.read_text().splitlines()[0] == "id,name,price"
