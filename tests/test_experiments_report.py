"""Tests for the consolidated reproduction report generator."""

import pytest

from repro.experiments import build_context
from repro.experiments.report import generate_report, main


@pytest.fixture(scope="module")
def report_text():
    context = build_context(scale="small", seed=7)
    return generate_report(context, quick=True)


class TestReport:
    def test_contains_every_section(self, report_text):
        for heading in (
            "## Table I", "## Table II", "## Figure 5", "## Figure 7",
            "## Figure 8", "## Figure 9", "## Figure 10", "## Table III",
            "## Ablations",
        ):
            assert heading in report_text, heading

    def test_is_markdown_tables(self, report_text):
        assert "| method |" in report_text or "| method " in report_text
        assert "|---|" in report_text

    def test_mentions_corpus(self, report_text):
        assert "TAT nodes" in report_text

    def test_main_writes_file(self, tmp_path):
        out = tmp_path / "report.md"
        code = main([
            "--out", str(out), "--scale", "small", "--quick",
        ])
        assert code == 0
        assert out.exists()
        assert "# Reproduction report" in out.read_text()
