"""Unit tests for repro.graph.similarity on the toy corpus.

Key semantic check: "probabilistic" and "uncertain" never share a title
but share the author ann and the venue vldb — the contextual walk must
give "uncertain" a positive similarity from "probabilistic" while
co-occurrence gives zero (tested in test_graph_cooccurrence).
"""

import pytest

from repro.errors import GraphError
from repro.graph.similarity import SimilarityExtractor
from repro.index.inverted import FieldTerm

TITLE = ("papers", "title")


def node_of(graph, text):
    return graph.term_node_id(FieldTerm(TITLE, text))


class TestSimilarNodes:
    def test_same_class_only(self, toy_graph, toy_similarity):
        node_id = node_of(toy_graph, "probabilistic")
        for sim in toy_similarity.similar_nodes(node_id, 20):
            assert toy_graph.class_of(sim.node_id) == TITLE

    def test_excludes_self(self, toy_graph, toy_similarity):
        node_id = node_of(toy_graph, "probabilistic")
        assert node_id not in {
            s.node_id for s in toy_similarity.similar_nodes(node_id, 20)
        }

    def test_sorted_descending(self, toy_graph, toy_similarity):
        node_id = node_of(toy_graph, "probabilistic")
        scores = [s.score for s in toy_similarity.similar_nodes(node_id, 20)]
        assert scores == sorted(scores, reverse=True)

    def test_top_n_respected(self, toy_graph, toy_similarity):
        node_id = node_of(toy_graph, "probabilistic")
        assert len(toy_similarity.similar_nodes(node_id, 3)) == 3

    def test_top_n_validation(self, toy_graph, toy_similarity):
        node_id = node_of(toy_graph, "probabilistic")
        with pytest.raises(GraphError):
            toy_similarity.similar_nodes(node_id, 0)

    def test_scores_positive(self, toy_graph, toy_similarity):
        node_id = node_of(toy_graph, "probabilistic")
        assert all(
            s.score > 0 for s in toy_similarity.similar_nodes(node_id, 20)
        )


class TestSemantics:
    def test_synonym_reachable_without_cooccurrence(
        self, toy_graph, toy_similarity
    ):
        """The paper's core claim at toy scale."""
        prob = node_of(toy_graph, "probabilistic")
        uncertain = node_of(toy_graph, "uncertain")
        assert toy_similarity.similarity(prob, uncertain) > 0

    def test_direct_cooccurrence_scores_highest(
        self, toy_graph, toy_similarity
    ):
        """Direct title-mates outrank venue-mates."""
        prob = node_of(toy_graph, "probabilistic")
        query = node_of(toy_graph, "query")       # same title (p0)
        uncertain = node_of(toy_graph, "uncertain")  # only via venue/author
        assert toy_similarity.similarity(prob, query) > (
            toy_similarity.similarity(prob, uncertain)
        )

    def test_similar_terms_text_interface(self, toy_similarity):
        terms = toy_similarity.similar_terms("probabilistic", 5)
        texts = [t for t, _s in terms]
        assert "pattern" in texts or "query" in texts

    def test_author_similarity_via_shared_venue(self, toy_graph, toy_similarity):
        """bob and eve never co-author but share icdm."""
        sims = dict(toy_similarity.similar_terms("bob", 5))
        assert "eve" in sims

    def test_idf_readout_changes_scores(self, toy_graph):
        plain = SimilarityExtractor(toy_graph, idf_readout=False)
        weighted = SimilarityExtractor(toy_graph, idf_readout=True)
        prob = node_of(toy_graph, "probabilistic")
        uncertain = node_of(toy_graph, "uncertain")
        idf = toy_graph.index.idf(FieldTerm(TITLE, "uncertain"))
        assert weighted.similarity(prob, uncertain) == pytest.approx(
            plain.similarity(prob, uncertain) * idf
        )

    def test_contextual_false_uses_indicator(self, toy_graph):
        individual = SimilarityExtractor(toy_graph, contextual=False)
        prob = node_of(toy_graph, "probabilistic")
        scores = individual.walk_scores(prob)
        # indicator restart: the source holds the restart mass
        assert scores[prob] > 0.1


class TestCaching:
    def test_walk_scores_cached(self, toy_graph):
        sim = SimilarityExtractor(toy_graph)
        node_id = node_of(toy_graph, "pattern")
        a = sim.walk_scores(node_id)
        b = sim.walk_scores(node_id)
        assert a is b
        assert sim.cache_size() == 1

    def test_precompute_and_clear(self, toy_graph):
        sim = SimilarityExtractor(toy_graph)
        ids = [node_of(toy_graph, t) for t in ("pattern", "mining")]
        sim.precompute(ids)
        assert sim.cache_size() == 2
        sim.clear_cache()
        assert sim.cache_size() == 0
