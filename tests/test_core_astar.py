"""Unit tests for repro.core.astar (Algorithm 3) vs the oracles."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.astar import astar_topk, backward_heuristic
from repro.core.enumeration import brute_force_topk
from repro.core.viterbi import viterbi_topk
from repro.errors import ReformulationError

from tests.strategies import hmms
from tests.test_core_hmm import build_tiny


class TestCorrectness:
    @settings(max_examples=60, deadline=None)
    @given(hmms())
    def test_matches_brute_force(self, hmm):
        k = 5
        ours = astar_topk(hmm, k).queries
        oracle = brute_force_topk(hmm, k)
        assert len(ours) == len(oracle)
        for a, b in zip(ours, oracle):
            assert a.score == pytest.approx(b.score, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(hmms())
    def test_matches_algorithm2(self, hmm):
        k = 4
        a3 = [q.score for q in astar_topk(hmm, k).queries]
        a2 = [q.score for q in viterbi_topk(hmm, k)]
        assert a3 == pytest.approx(a2, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(hmms())
    def test_results_sorted_and_unique(self, hmm):
        outcome = astar_topk(hmm, 6)
        scores = [q.score for q in outcome.queries]
        assert scores == sorted(scores, reverse=True)
        paths = [q.state_path for q in outcome.queries]
        assert len(paths) == len(set(paths))

    @settings(max_examples=30, deadline=None)
    @given(hmms())
    def test_k_exceeding_space(self, hmm):
        outcome = astar_topk(hmm, hmm.search_space + 5)
        # zero-score paths may be pruned, but every positive-score path
        # must be enumerated
        positive = sum(
            1 for q in brute_force_topk(hmm, hmm.search_space)
            if q.score > 0
        )
        assert len(outcome.queries) >= positive

    def test_k_validation(self):
        with pytest.raises(ReformulationError):
            astar_topk(build_tiny(), 0)


class TestHeuristic:
    @settings(max_examples=40, deadline=None)
    @given(hmms())
    def test_heuristic_admissible(self, hmm):
        """h[c][i] must upper-bound every completion's true factor."""
        h = backward_heuristic(hmm)
        oracle = brute_force_topk(hmm, hmm.search_space)
        for q in oracle:
            path = q.state_path
            # suffix factor from step c
            for c in range(hmm.length):
                suffix = 1.0
                for i in range(c + 1, hmm.length):
                    suffix *= float(
                        hmm.transitions[i - 1][path[i - 1], path[i]]
                    )
                    suffix *= float(hmm.emissions[i][path[i]])
                assert h[c][path[c]] >= suffix - 1e-12

    def test_last_step_heuristic_is_one(self):
        hmm = build_tiny()
        h = backward_heuristic(hmm)
        assert np.allclose(h[-1], 1.0)


class TestDiagnostics:
    def test_stage_timings_nonnegative(self):
        outcome = astar_topk(build_tiny(), 3)
        assert outcome.viterbi_seconds >= 0
        assert outcome.astar_seconds >= 0
        assert outcome.total_seconds == pytest.approx(
            outcome.viterbi_seconds + outcome.astar_seconds
        )

    def test_expansion_counter_positive(self):
        outcome = astar_topk(build_tiny(), 2)
        assert outcome.expanded >= 2

    def test_pruning_beats_exhaustive_on_peaked_hmm(self):
        """With one dominant path, A* must not expand the whole space."""
        import numpy as np

        from repro.core.candidates import CandidateState, StateKind
        from repro.core.hmm import ReformulationHMM

        m, n = 6, 8
        states = [
            [
                CandidateState(StateKind.SIMILAR, i * n + j, f"t{i}_{j}", 1.0)
                for j in range(n)
            ]
            for i in range(m)
        ]
        pi = np.full(n, 1e-6)
        pi[0] = 1.0
        pi /= pi.sum()
        emissions = []
        for _ in range(m):
            e = np.full(n, 1e-6)
            e[0] = 1.0
            emissions.append(e / e.sum())
        transitions = []
        for _ in range(1, m):
            t = np.full((n, n), 1e-6)
            t[0, 0] = 1.0
            transitions.append(t)
        hmm = ReformulationHMM(
            query=tuple(f"q{i}" for i in range(m)),
            states=states,
            pi=pi,
            emissions=emissions,
            transitions=transitions,
        )
        outcome = astar_topk(hmm, 1)
        assert outcome.queries[0].state_path == (0,) * m
        assert outcome.expanded < n ** m / 100
