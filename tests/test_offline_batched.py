"""Equivalence suite for the batched offline stage.

Locks in the tentpole rework: whatever the batch size, worker count or
walk solver, :meth:`OfflinePrecomputer.build_store` must produce the same
relations (within 1e-8) as the sequential per-term reference path, and a
v2 store-backed reformulator must return the same top-k suggestions as
the live extractors.
"""

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.graph.similarity import SimilarityExtractor
from repro.offline import (
    OfflinePrecomputer,
    TermRelationStore,
    _term_key,
)

TOL = 1e-8


def _sequential_reference(graph, n_similar=8, closeness_top=30):
    """The seed path: one term at a time, iterative walks, no batching."""
    precomputer = OfflinePrecomputer(
        graph,
        similarity=SimilarityExtractor(graph),
        closeness=ClosenessExtractor(graph, beam_width=None),
        n_similar=n_similar,
        closeness_top=closeness_top,
    )
    store = TermRelationStore(graph)
    for term in precomputer.vocabulary():
        store._relations[_term_key(term)] = precomputer.precompute_term(term)
    return store


def _batched(graph, batch_size, workers, walk_method,
             n_similar=8, closeness_top=30):
    precomputer = OfflinePrecomputer(
        graph,
        closeness=ClosenessExtractor(graph, beam_width=None),
        n_similar=n_similar,
        closeness_top=closeness_top,
    )
    store = precomputer.build_store(
        batch_size=batch_size, workers=workers, walk_method=walk_method
    )
    return store, precomputer.stats


def assert_stores_equivalent(reference, candidate, tol=TOL, exact_order=True):
    """Same relations within *tol*.

    With ``exact_order=False`` (the direct solver, whose scores differ
    from the iterative fixed point by ~1e-11) rankings may permute
    *tied* entries and the truncation boundary may swap ties; everything
    separated by more than *tol* must still agree.
    """
    keys = sorted(reference._keys())
    assert sorted(candidate._keys()) == keys
    for key in keys:
        ref = reference._get(key)
        got = candidate._get(key)
        if exact_order:
            assert [k for k, _ in got.similar] == [k for k, _ in ref.similar], key
            for (_, a), (_, b) in zip(got.similar, ref.similar):
                assert a == pytest.approx(b, abs=tol)
        else:
            got_scores = dict(got.similar)
            ref_scores = dict(ref.similar)
            # stored list stays sorted descending
            values = [s for _, s in got.similar]
            assert all(a >= b - tol for a, b in zip(values, values[1:])), key
            boundary = min(ref_scores.values(), default=0.0)
            for term in set(ref_scores) | set(got_scores):
                a = ref_scores.get(term)
                b = got_scores.get(term)
                if a is None or b is None:
                    # only legal at the truncation boundary, on a tie
                    present = b if a is None else a
                    assert present == pytest.approx(boundary, abs=tol), key
                else:
                    assert b == pytest.approx(a, abs=tol), key
        assert set(got.closeness) == set(ref.closeness), key
        for other, value in ref.closeness.items():
            assert got.closeness[other] == pytest.approx(value, abs=tol)


@pytest.fixture(scope="module")
def reference(toy_graph):
    return _sequential_reference(toy_graph)


class TestBatchedEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 5, 64])
    @pytest.mark.parametrize("walk_method", ["iterative", "direct"])
    def test_any_batch_size_matches_sequential(
        self, toy_graph, reference, batch_size, walk_method
    ):
        store, _stats = _batched(toy_graph, batch_size, 1, walk_method)
        assert_stores_equivalent(
            reference, store, exact_order=walk_method == "iterative"
        )

    @pytest.mark.parametrize("workers", [2, 3])
    def test_any_worker_count_matches_sequential(
        self, toy_graph, reference, workers
    ):
        store, _stats = _batched(toy_graph, 16, workers, "iterative")
        assert_stores_equivalent(reference, store, exact_order=True)

    def test_direct_solver_residual_is_tiny(self, toy_graph):
        _store, stats = _batched(toy_graph, 16, 1, "direct")
        assert stats.batch_residuals
        assert stats.max_residual < 1e-10

    def test_extractor_caches_stay_bounded(self, toy_graph):
        similarity = SimilarityExtractor(toy_graph)
        closeness = ClosenessExtractor(toy_graph, beam_width=None)
        precomputer = OfflinePrecomputer(
            toy_graph, similarity=similarity, closeness=closeness,
            n_similar=8, closeness_top=30,
        )
        precomputer.build_store(batch_size=8)
        # every term's cache entry is evicted right after its readout
        assert similarity.cache_size() == 0
        assert closeness.cache_size() == 0


class TestStats:
    def test_counters(self, toy_graph, toy_index):
        _store, stats = _batched(toy_graph, 16, 1, "direct")
        assert stats.total_terms == toy_index.vocabulary_size()
        assert stats.terms_done == stats.total_terms
        expected_batches = -(-stats.total_terms // 16)
        assert stats.n_batches == expected_batches
        assert len(stats.batch_residuals) == expected_batches
        assert stats.terms_per_second > 0
        assert stats.walk_method == "direct"

    def test_progress_callback_fires_per_batch(self, toy_graph):
        precomputer = OfflinePrecomputer(
            toy_graph,
            closeness=ClosenessExtractor(toy_graph, beam_width=None),
            n_similar=4, closeness_top=10,
        )
        seen = []
        precomputer.build_store(
            batch_size=10, progress=lambda done, total: seen.append((done, total))
        )
        total = precomputer.stats.total_terms
        assert seen[-1] == (total, total)
        assert [done for done, _ in seen] == sorted({done for done, _ in seen})

    def test_validation(self, toy_graph):
        precomputer = OfflinePrecomputer(toy_graph)
        with pytest.raises(ReproError):
            precomputer.build_store(batch_size=0)
        with pytest.raises(ReproError):
            precomputer.build_store(workers=0)
        with pytest.raises(ReproError):
            precomputer.build_store(walk_method="magic")


class TestStoreBackedTopK:
    """The v2 store must serve the same top-k as the live extractors."""

    QUERIES = [
        ["probabilistic", "query"],
        ["pattern", "mining"],
        ["uncertain", "data"],
    ]

    @pytest.fixture(scope="class")
    def sharded(self, small_graph, tmp_path_factory):
        precomputer = OfflinePrecomputer(
            small_graph, n_similar=15, closeness_top=200
        )
        store = precomputer.build_store(batch_size=128, workers=2)
        root = store.save_sharded(
            tmp_path_factory.mktemp("store") / "v2", n_shards=8
        )
        return TermRelationStore.load(root, small_graph)

    def test_loads_as_sharded(self, sharded):
        from repro.offline_store import ShardedTermRelationStore

        assert isinstance(sharded, ShardedTermRelationStore)

    @pytest.mark.parametrize("query", QUERIES, ids=[" ".join(q) for q in QUERIES])
    def test_same_topk_as_live(self, small_graph, sharded, query):
        config = ReformulatorConfig(n_candidates=10)
        live = Reformulator(small_graph, config)
        cached = Reformulator(
            small_graph, config, similarity=sharded, closeness=sharded
        )
        live_out = [(s.text, s.score) for s in live.reformulate(query, k=5)]
        cached_out = [(s.text, s.score) for s in cached.reformulate(query, k=5)]
        assert [t for t, _ in cached_out] == [t for t, _ in live_out]
        for (_, a), (_, b) in zip(cached_out, live_out):
            assert a == pytest.approx(b, rel=1e-6)
