"""Unit tests for repro.index.stats."""

import pytest

from repro.index.inverted import FieldTerm
from repro.index.stats import CorpusStats

TITLE = ("papers", "title")
CONF = ("conferences", "name")


@pytest.fixture()
def stats(toy_index) -> CorpusStats:
    return CorpusStats(toy_index)


class TestFrequencies:
    def test_term_frequencies_sorted(self, stats):
        freqs = stats.term_frequencies()
        values = [v for _t, v in freqs]
        assert values == sorted(values, reverse=True)

    def test_term_frequencies_field_filter(self, stats):
        freqs = stats.term_frequencies(field=CONF)
        assert {t.text for t, _ in freqs} == {"vldb", "icdm"}

    def test_top_terms(self, stats):
        top = stats.top_terms(2, field=TITLE)
        assert len(top) == 2
        # "probabilistic" and "pattern" both occur twice; ties broken
        # deterministically
        assert {t.text for t in top} == {"pattern", "probabilistic"}

    def test_top_terms_larger_than_vocab(self, stats):
        top = stats.top_terms(100, field=CONF)
        assert len(top) == 2


class TestCooccurrence:
    def test_counts_within_tuple(self, stats):
        counts = stats.cooccurrence_counts(FieldTerm(TITLE, "probabilistic"))
        texts = {t.text: c for t, c in counts.items()}
        # co-occurs with p0's words and p3's words
        assert texts["query"] == 1
        assert texts["pattern"] == 1
        assert "uncertain" not in texts  # never shares a title

    def test_counts_exclude_self(self, stats):
        counts = stats.cooccurrence_counts(FieldTerm(TITLE, "pattern"))
        assert FieldTerm(TITLE, "pattern") not in counts

    def test_unseen_term_empty(self, stats):
        assert not stats.cooccurrence_counts(FieldTerm(TITLE, "zzz"))

    def test_shared_tuples(self, stats):
        a = FieldTerm(TITLE, "probabilistic")
        b = FieldTerm(TITLE, "pattern")
        assert stats.shared_tuples(a, b) == 1
        assert stats.shared_tuples(a, FieldTerm(TITLE, "uncertain")) == 0

    def test_shared_tuples_symmetric(self, stats):
        a = FieldTerm(TITLE, "probabilistic")
        b = FieldTerm(TITLE, "pattern")
        assert stats.shared_tuples(a, b) == stats.shared_tuples(b, a)


class TestSummaries:
    def test_field_summary(self, stats):
        summary = stats.field_summary()
        assert summary[TITLE]["vocabulary"] == 10
        assert summary[CONF]["occurrences"] == 2

    def test_tuples_of(self, stats):
        refs = stats.tuples_of(FieldTerm(TITLE, "probabilistic"))
        assert set(refs) == {("papers", 0), ("papers", 3)}
