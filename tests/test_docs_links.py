"""Docs link check: every relative link in the markdown docs resolves.

Doubles as the CI ``docs link check`` step (the workflow just runs this
module).  External links are not fetched — only repo-relative targets
are verified, so the check is hermetic and fast.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [
    REPO_ROOT / "README.md",
    REPO_ROOT / "DESIGN.md",
    REPO_ROOT / "ROADMAP.md",
]

# [text](target) — excluding images' leading "!" is irrelevant here,
# an image target must resolve just the same
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path):
    for match in _LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize(
    "doc", [d for d in DOC_FILES if d.exists()], ids=lambda d: d.name
)
def test_relative_links_resolve(doc):
    broken = []
    for target in _relative_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)}: broken links {broken}"


def test_docs_cross_reference_store_formats():
    # the format doc is load-bearing for the v3/pre-fork story: the
    # docs that discuss those features must point at it
    for name in ("server.md", "usage.md", "serving.md", "architecture.md"):
        text = (REPO_ROOT / "docs" / name).read_text(encoding="utf-8")
        assert "store_formats.md" in text, name
