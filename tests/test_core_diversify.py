"""Unit tests for repro.core.diversify."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversify import (
    distinct_term_coverage,
    keyword_overlap,
    mmr_diversify,
)
from repro.core.scoring import ScoredQuery
from repro.errors import ReformulationError


def scored(terms, score):
    return ScoredQuery(
        terms=tuple(terms), score=score, state_path=tuple(range(len(terms)))
    )


class TestOverlap:
    def test_identical(self):
        a = scored(["x", "y"], 1.0)
        assert keyword_overlap(a, a) == 1.0

    def test_disjoint(self):
        assert keyword_overlap(
            scored(["a", "b"], 1.0), scored(["c", "d"], 1.0)
        ) == 0.0

    def test_partial(self):
        assert keyword_overlap(
            scored(["a", "b"], 1.0), scored(["b", "c"], 1.0)
        ) == pytest.approx(1 / 3)

    def test_symmetric(self):
        a, b = scored(["a", "b"], 1.0), scored(["b", "c", "d"], 1.0)
        assert keyword_overlap(a, b) == keyword_overlap(b, a)

    def test_all_void(self):
        assert keyword_overlap(scored([None], 1.0), scored([None], 1.0)) == 1.0


class TestMmr:
    def pool(self):
        return [
            scored(["a", "b"], 1.00),
            scored(["a", "c"], 0.95),   # overlaps with #1
            scored(["x", "y"], 0.60),   # disjoint
            scored(["a", "d"], 0.90),
        ]

    def test_lambda_one_is_score_order(self):
        out = mmr_diversify(self.pool(), k=3, trade_off=1.0)
        assert [q.score for q in out] == [1.00, 0.95, 0.90]

    def test_low_lambda_prefers_disjoint(self):
        out = mmr_diversify(self.pool(), k=2, trade_off=0.4)
        assert out[0].score == 1.00              # best always first
        assert out[1].keywords == ("x", "y")     # diversity beats 0.95

    def test_k_larger_than_pool(self):
        out = mmr_diversify(self.pool(), k=10)
        assert len(out) == 4

    def test_empty_pool(self):
        assert mmr_diversify([], k=3) == []

    def test_validation(self):
        with pytest.raises(ReformulationError):
            mmr_diversify(self.pool(), k=0)
        with pytest.raises(ReformulationError):
            mmr_diversify(self.pool(), k=2, trade_off=0.0)

    def test_no_duplicates_selected(self):
        out = mmr_diversify(self.pool(), k=4, trade_off=0.5)
        assert len({id(q) for q in out}) == 4
        assert len({q.text for q in out}) == 4

    def test_zero_scores_handled(self):
        pool = [scored(["a"], 0.0), scored(["b"], 0.0)]
        out = mmr_diversify(pool, k=2, trade_off=0.5)
        assert len(out) == 2

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(
                    st.sampled_from("abcdef"), min_size=1, max_size=3,
                    unique=True,
                ),
                st.floats(0.0, 1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(0.1, 1.0),
    )
    def test_property_subset_of_pool(self, raw, trade_off):
        pool = [scored(terms, score) for terms, score in raw]
        out = mmr_diversify(pool, k=3, trade_off=trade_off)
        assert len(out) == min(3, len(pool))
        assert all(q in pool for q in out)
        # the top-scored candidate is always selected first
        assert out[0].score == max(q.score for q in pool)


class TestCoverage:
    def test_distinct_term_coverage(self):
        queries = [scored(["a", "b"], 1.0), scored(["b", "c"], 0.5)]
        assert distinct_term_coverage(queries) == 3

    def test_diversified_coverage_not_worse(self, toy_graph):
        """End-to-end: MMR never reduces distinct-term coverage."""
        from repro.core.reformulator import Reformulator, ReformulatorConfig

        plain = Reformulator(
            toy_graph, ReformulatorConfig(n_candidates=6)
        ).reformulate(["probabilistic", "query"], k=5)
        diverse = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=6, diversify_trade_off=0.5),
        ).reformulate(["probabilistic", "query"], k=5)
        assert distinct_term_coverage(diverse) >= distinct_term_coverage(plain)
