"""Unit tests for repro.eval.judge."""

import pytest

from repro.core.scoring import ScoredQuery
from repro.data.dblp_synth import GroundTruth
from repro.data.topics import TopicModel
from repro.errors import ReproError
from repro.eval.judge import JudgeConfig, JudgePanel, RelevanceJudge


@pytest.fixture(scope="module")
def truth() -> GroundTruth:
    truth = GroundTruth(topic_model=TopicModel())
    truth.author_topics["alice r"] = {1}       # probabilistic data
    truth.conference_topics["pdb"] = {1, 6}    # prob. data + query proc.
    return truth


def scored(terms):
    return ScoredQuery(terms=tuple(terms), score=0.5,
                       state_path=tuple(range(len(terms))))


class TestSingleJudge:
    def test_identity_always_relevant(self, truth):
        judge = RelevanceJudge(truth)
        assert judge.is_relevant(
            ["probabilistic", "query"], scored(["probabilistic", "query"])
        )

    def test_synonym_substitution_relevant(self, truth):
        judge = RelevanceJudge(truth)
        assert judge.is_relevant(["probabilistic"], scored(["uncertain"]))

    def test_same_topic_substitution_relevant(self, truth):
        judge = RelevanceJudge(truth)
        assert judge.is_relevant(["probabilistic"], scored(["lineage"]))

    def test_related_topic_substitution_relevant(self, truth):
        # query processing is declared related to probabilistic data
        judge = RelevanceJudge(truth)
        assert judge.is_relevant(["probabilistic"], scored(["join"]))

    def test_cross_topic_substitution_irrelevant(self, truth):
        judge = RelevanceJudge(truth)
        assert not judge.is_relevant(["probabilistic"], scored(["twig"]))

    def test_topical_to_generic_irrelevant(self, truth):
        judge = RelevanceJudge(truth)
        assert not judge.is_relevant(["probabilistic"], scored(["efficient"]))

    def test_generic_original_judged_by_query_topics(self, truth):
        judge = RelevanceJudge(truth)
        # "efficient" is filler; replacing it with a prob-data word fits
        assert judge.is_relevant(
            ["efficient", "probabilistic"], scored(["sampling", "probabilistic"])
        )
        # ...but replacing it with an off-topic word does not
        assert not judge.is_relevant(
            ["efficient", "probabilistic"], scored(["twig", "probabilistic"])
        )

    def test_filler_for_filler_ok(self, truth):
        judge = RelevanceJudge(truth)
        assert judge.is_relevant(
            ["efficient", "probabilistic"], scored(["novel", "probabilistic"])
        )

    def test_author_substitution_uses_author_topics(self, truth):
        judge = RelevanceJudge(truth)
        assert judge.is_relevant(["alice r"], scored(["uncertain"]))
        assert not judge.is_relevant(["alice r"], scored(["twig"]))

    def test_length_mismatch_rejected(self, truth):
        judge = RelevanceJudge(truth)
        with pytest.raises(ReproError):
            judge.is_relevant(["a", "b"], scored(["a"]))

    def test_min_fraction_config(self, truth):
        lenient = RelevanceJudge(
            truth,
            config=JudgeConfig(require_all_terms=False, min_term_fraction=0.5),
        )
        # one good + one bad substitution = 0.5 fraction -> accepted
        assert lenient.is_relevant(
            ["probabilistic", "lineage"], scored(["uncertain", "twig"])
        )
        strict = RelevanceJudge(truth)
        assert not strict.is_relevant(
            ["probabilistic", "lineage"], scored(["uncertain", "twig"])
        )

    def test_all_void_query_irrelevant(self, truth):
        judge = RelevanceJudge(truth)
        assert not judge.is_relevant(["probabilistic"], scored([None]))


class TestCohesion:
    def test_cohesion_consulted(self, truth, toy_search):
        judge = RelevanceJudge(truth, search=toy_search)
        # "probabilistic uncertain" joins through vldb/ann in the toy db
        assert judge.is_relevant(
            ["probabilistic", "uncertain"],
            scored(["probabilistic", "uncertain"]),
        )

    def test_incohesive_rejected(self, truth, toy_search):
        """'ann bob' has no joined result in the toy database; with a
        ground truth that has no topics for either name, identity terms
        pass the term check and cohesion decides."""
        judge = RelevanceJudge(truth, search=toy_search)
        assert not judge.is_relevant(["ann", "bob"], scored(["ann", "bob"]))

    def test_cohesion_skippable(self, truth, toy_search):
        judge = RelevanceJudge(
            truth, search=toy_search, config=JudgeConfig(require_cohesion=False)
        )
        assert judge.is_relevant(["ann", "bob"], scored(["ann", "bob"]))


class TestPanel:
    def test_majority_vote(self, truth, toy_search):
        panel = JudgePanel(truth, toy_search)
        # clean identity query: all three judges accept
        assert panel.is_relevant(
            ["probabilistic", "query"], scored(["probabilistic", "query"])
        )
        # off-topic substitution: all three reject the term check
        assert not panel.is_relevant(["probabilistic"], scored(["twig"]))

    def test_judge_ranking(self, truth, toy_search):
        panel = JudgePanel(truth, toy_search)
        ranking = [
            scored(["probabilistic"]),
            scored(["twig"]),
        ]
        assert panel.judge_ranking(["probabilistic"], ranking) == [True, False]

    def test_panel_has_three_judges(self, truth):
        assert len(JudgePanel(truth).judges) == 3
