"""Unit tests for repro.data.dblp_synth and repro.data.names."""

import pytest

from repro.data.dblp_synth import (
    SynthConfig,
    dblp_schema,
    synthesize_dblp,
)
from repro.data.names import author_names, conference_names, venue_full_name
from repro.errors import ReproError
from repro.index.analyzer import Analyzer


@pytest.fixture(scope="module")
def corpus():
    return synthesize_dblp(
        SynthConfig(n_authors=60, n_papers=200, n_conferences=8, seed=21)
    )


class TestNames:
    def test_author_names_unique(self):
        names = author_names(500, seed=1)
        assert len(set(names)) == 500

    def test_author_names_deterministic(self):
        assert author_names(50, seed=3) == author_names(50, seed=3)

    def test_author_names_seed_sensitive(self):
        assert author_names(50, seed=3) != author_names(50, seed=4)

    def test_conference_names_unique(self):
        names = conference_names(200, seed=1)
        assert len(set(names)) == 200

    def test_conference_names_deterministic(self):
        assert conference_names(30, seed=9) == conference_names(30, seed=9)

    def test_venue_full_name_deterministic(self):
        assert venue_full_name("icde", 1) == venue_full_name("icde", 1)


class TestConfig:
    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            synthesize_dblp(SynthConfig(n_authors=0))

    def test_invalid_title_bounds(self):
        with pytest.raises(ReproError):
            synthesize_dblp(SynthConfig(min_title_words=5, max_title_words=3))

    def test_invalid_authors_per_paper(self):
        with pytest.raises(ReproError):
            synthesize_dblp(SynthConfig(max_authors_per_paper=0))


class TestGeneration:
    def test_sizes_match_config(self, corpus):
        db = corpus.database
        assert len(db.table("authors")) == 60
        assert len(db.table("papers")) == 200
        assert len(db.table("conferences")) == 8

    def test_deterministic(self):
        config = SynthConfig(n_authors=30, n_papers=80, n_conferences=6, seed=5)
        a = synthesize_dblp(config)
        b = synthesize_dblp(config)
        titles_a = [r["title"] for r in a.database.table("papers").scan()]
        titles_b = [r["title"] for r in b.database.table("papers").scan()]
        assert titles_a == titles_b

    def test_seed_changes_output(self):
        a = synthesize_dblp(SynthConfig(n_papers=80, seed=5))
        b = synthesize_dblp(SynthConfig(n_papers=80, seed=6))
        titles_a = [r["title"] for r in a.database.table("papers").scan()]
        titles_b = [r["title"] for r in b.database.table("papers").scan()]
        assert titles_a != titles_b

    def test_integrity(self, corpus):
        corpus.database.check_integrity()

    def test_every_paper_has_authors(self, corpus):
        db = corpus.database
        authored = {r["pid"] for r in db.table("writes").scan()}
        assert authored == set(db.table("papers").primary_keys())

    def test_years_in_range(self, corpus):
        lo, hi = corpus.config.year_range
        for row in corpus.database.table("papers").scan():
            assert lo <= row["year"] <= hi

    def test_authors_per_paper_capped(self, corpus):
        counts = {}
        for row in corpus.database.table("writes").scan():
            counts[row["pid"]] = counts.get(row["pid"], 0) + 1
        # repeat-collaboration growth adds at most one author beyond cap
        assert max(counts.values()) <= corpus.config.max_authors_per_paper + 1


class TestStructuralSemantics:
    def test_synonym_cluster_mates_never_share_title(self, corpus):
        """The invariant the whole reproduction rests on."""
        model = corpus.topic_model
        analyzer = Analyzer()
        for row in corpus.database.table("papers").scan():
            words = set(analyzer.tokenize(str(row["title"])))
            words = [w for w in words if model.topics_of_word(w)]
            for i, a in enumerate(words):
                for b in words[i + 1:]:
                    assert not (a != b and model.are_synonyms(a, b)), (
                        f"synonyms {a!r}/{b!r} share title {row['title']!r}"
                    )

    def test_titles_contain_topic_words(self, corpus):
        model = corpus.topic_model
        analyzer = Analyzer()
        for row in corpus.database.table("papers").scan():
            topic_id = corpus.ground_truth.paper_topic[row["pid"]]
            vocab = set(model.topic(topic_id).vocabulary)
            words = analyzer.tokenize(str(row["title"]))
            assert any(w in vocab for w in words)

    def test_paper_venue_hosts_topic(self, corpus):
        truth = corpus.ground_truth
        db = corpus.database
        for row in db.table("papers").scan():
            topic_id = truth.paper_topic[row["pid"]]
            conf = db.table("conferences").get(row["cid"])
            assert topic_id in truth.conference_topics[str(conf["name"])]

    def test_paper_authors_work_on_topic(self, corpus):
        truth = corpus.ground_truth
        db = corpus.database
        for row in db.table("writes").scan():
            topic_id = truth.paper_topic[row["pid"]]
            author = db.table("authors").get(row["aid"])
            topics = truth.author_topics[str(author["name"])]
            # the author either owns the topic or joined an existing group
            assert topics  # always assigned

    def test_every_topic_has_some_venue(self, corpus):
        truth = corpus.ground_truth
        hosted = set()
        for topics in truth.conference_topics.values():
            hosted |= topics
        assert hosted == set(range(len(corpus.topic_model)))


class TestGroundTruth:
    def test_topics_of_term_title_word(self, corpus):
        assert corpus.ground_truth.topics_of_term("probabilistic") == {1}

    def test_topics_of_term_author(self, corpus):
        name = next(
            iter(corpus.ground_truth.author_topics)
        )
        assert corpus.ground_truth.topics_of_term(name)

    def test_topics_of_term_unknown(self, corpus):
        assert corpus.ground_truth.topics_of_term("zzz") == set()

    def test_terms_relevant_identity(self, corpus):
        assert corpus.ground_truth.terms_relevant("zzz", "zzz")

    def test_terms_relevant_same_topic(self, corpus):
        assert corpus.ground_truth.terms_relevant("probabilistic", "lineage")

    def test_terms_relevant_unrelated(self, corpus):
        assert not corpus.ground_truth.terms_relevant(
            "probabilistic", "twig"
        )

    def test_schema_shape(self):
        schema = dblp_schema()
        assert set(schema.tables) == {
            "conferences", "authors", "papers", "writes",
        }
        assert len(schema.foreign_keys) == 3
