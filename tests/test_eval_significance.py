"""Unit tests for repro.eval.significance."""

import pytest

from repro.errors import ReproError
from repro.eval.significance import (
    BootstrapResult,
    paired_bootstrap,
    per_query_precision,
)


class TestPairedBootstrap:
    def test_clear_win_is_significant(self):
        treatment = [0.9] * 20
        baseline = [0.5] * 20
        result = paired_bootstrap(treatment, baseline, seed=1)
        assert result.mean_difference == pytest.approx(0.4)
        assert result.p_value == 0.0
        assert result.significant

    def test_identical_samples_not_significant(self):
        scores = [0.7] * 20
        result = paired_bootstrap(scores, scores, seed=1)
        assert result.mean_difference == 0.0
        assert not result.significant
        assert result.p_value == 1.0  # every resample ties at zero

    def test_noisy_tie_not_significant(self):
        treatment = [0.6, 0.4] * 10
        baseline = [0.4, 0.6] * 10
        result = paired_bootstrap(treatment, baseline, seed=3)
        assert abs(result.mean_difference) < 1e-9
        assert not result.significant

    def test_clear_loss_p_value_near_one(self):
        result = paired_bootstrap([0.2] * 15, [0.8] * 15, seed=2)
        assert result.p_value == 1.0

    def test_deterministic_per_seed(self):
        t = [0.8, 0.6, 0.9, 0.5, 0.7]
        b = [0.7, 0.6, 0.6, 0.6, 0.6]
        a = paired_bootstrap(t, b, seed=9)
        b_ = paired_bootstrap(t, b, seed=9)
        assert a == b_

    def test_validation(self):
        with pytest.raises(ReproError):
            paired_bootstrap([1.0], [1.0, 0.5])
        with pytest.raises(ReproError):
            paired_bootstrap([], [])
        with pytest.raises(ReproError):
            paired_bootstrap([1.0], [0.5], n_resamples=0)

    def test_metadata(self):
        result = paired_bootstrap([1.0] * 7, [0.0] * 7, n_resamples=100)
        assert result.n_queries == 7
        assert result.n_resamples == 100


class TestPerQueryPrecision:
    def test_vector_shape(self):
        verdicts = [[True, False], [True, True]]
        assert per_query_precision(verdicts, 2) == [0.5, 1.0]

    def test_missing_tail_counts_as_miss(self):
        assert per_query_precision([[True]], 4) == [0.25]


class TestEndToEnd:
    def test_fig5_tat_vs_baselines_significance(self):
        """TAT's Figure 5 win should be checkable for significance."""
        from repro.experiments import build_context

        context = build_context(scale="small", seed=7)
        queries = context.workloads.mixed_queries(12)
        per_method = {}
        for method in ("tat", "cooccurrence"):
            reformulator = context.reformulator(method)
            verdicts = []
            for wq in queries:
                keywords = list(wq.keywords)
                ranked = reformulator.reformulate(keywords, k=10)
                verdicts.append(
                    context.judges.judge_ranking(keywords, ranked)
                )
            per_method[method] = per_query_precision(verdicts, 10)
        result = paired_bootstrap(
            per_method["tat"], per_method["cooccurrence"], seed=5
        )
        # direction must match the Figure 5 finding
        assert result.mean_difference >= 0
