"""Unit tests for repro.graph.randomwalk."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, GraphError
from repro.graph.adjacency import AdjacencyBuilder
from repro.graph.randomwalk import RandomWalkEngine


def line_graph(n=5):
    builder = AdjacencyBuilder()
    for i in range(n - 1):
        builder.add_edge(i, i + 1)
    return builder.freeze(n)


def star_graph(n=6):
    """Node 0 is the hub."""
    builder = AdjacencyBuilder()
    for i in range(1, n):
        builder.add_edge(0, i)
    return builder.freeze(n)


@pytest.fixture()
def engine() -> RandomWalkEngine:
    return RandomWalkEngine(line_graph())


class TestValidation:
    def test_damping_bounds(self):
        with pytest.raises(GraphError):
            RandomWalkEngine(line_graph(), damping=0.0)
        with pytest.raises(GraphError):
            RandomWalkEngine(line_graph(), damping=1.0)

    def test_tol_positive(self):
        with pytest.raises(GraphError):
            RandomWalkEngine(line_graph(), tol=0.0)

    def test_max_iterations_positive(self):
        with pytest.raises(GraphError):
            RandomWalkEngine(line_graph(), max_iterations=0)

    def test_indicator_out_of_range(self, engine):
        with pytest.raises(GraphError):
            engine.indicator_preference(99)

    def test_weighted_preference_validations(self, engine):
        with pytest.raises(GraphError):
            engine.weighted_preference({99: 1.0})
        with pytest.raises(GraphError):
            engine.weighted_preference({0: -1.0})
        with pytest.raises(GraphError):
            engine.weighted_preference({0: 0.0})

    def test_walk_shape_check(self, engine):
        with pytest.raises(GraphError):
            engine.walk(np.ones(3))

    def test_walk_zero_mass(self, engine):
        with pytest.raises(GraphError):
            engine.walk(np.zeros(5))


class TestConvergence:
    def test_converges_on_line(self, engine):
        result = engine.global_walk()
        assert result.converged
        assert result.residual < engine.tol

    def test_scores_sum_to_one(self, engine):
        result = engine.individual_walk(2)
        assert result.scores.sum() == pytest.approx(1.0)

    def test_scores_nonnegative(self, engine):
        result = engine.individual_walk(0)
        assert (result.scores >= 0).all()

    def test_fixed_point_satisfies_equation(self):
        adj = star_graph()
        engine = RandomWalkEngine(adj, damping=0.85, tol=1e-12)
        r = engine.indicator_preference(1)
        p = engine.walk(r).scores
        t = adj.transition_matrix()
        lhs = p
        rhs = 0.85 * (t @ p) + 0.15 * r
        assert np.allclose(lhs, rhs, atol=1e-8)

    def test_strict_mode_raises_when_budget_too_small(self):
        engine = RandomWalkEngine(
            line_graph(), max_iterations=1, tol=1e-15, strict=True
        )
        with pytest.raises(ConvergenceError):
            engine.global_walk()

    def test_nonstrict_returns_best_effort(self):
        engine = RandomWalkEngine(line_graph(), max_iterations=1, tol=1e-15)
        result = engine.global_walk()
        assert not result.converged
        assert result.iterations == 1

    def test_dangling_mass_redistributed(self):
        # node 2 is isolated: walk mass leaking through its zero column
        # must be restored, keeping the distribution normalized.
        builder = AdjacencyBuilder()
        builder.add_edge(0, 1)
        adj = builder.freeze(3)
        engine = RandomWalkEngine(adj)
        result = engine.walk(np.array([0.4, 0.3, 0.3]))
        assert result.scores.sum() == pytest.approx(1.0)
        assert result.scores[2] > 0  # restart keeps feeding it


class TestSemantics:
    def test_individual_walk_peaks_at_source(self):
        engine = RandomWalkEngine(line_graph(9))
        scores = engine.individual_walk(4).scores
        assert scores.argmax() == 4

    def test_scores_decay_with_distance_on_line(self):
        engine = RandomWalkEngine(line_graph(9))
        scores = engine.individual_walk(0).scores
        assert scores[1] > scores[3] > scores[5]

    def test_hub_scores_high_in_global_walk(self):
        engine = RandomWalkEngine(star_graph())
        scores = engine.global_walk().scores
        assert scores.argmax() == 0

    def test_uniform_preference_symmetry_on_star(self):
        engine = RandomWalkEngine(star_graph())
        scores = engine.global_walk().scores
        leaves = scores[1:]
        assert np.allclose(leaves, leaves[0])

    def test_higher_damping_spreads_more(self):
        low = RandomWalkEngine(line_graph(9), damping=0.3)
        high = RandomWalkEngine(line_graph(9), damping=0.9)
        far_low = low.individual_walk(0).scores[6]
        far_high = high.individual_walk(0).scores[6]
        assert far_high > far_low

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 8), st.floats(0.1, 0.9))
    def test_property_distribution(self, source, damping):
        engine = RandomWalkEngine(line_graph(9), damping=damping)
        scores = engine.individual_walk(source).scores
        assert scores.sum() == pytest.approx(1.0)
        assert (scores >= 0).all()
        # the source receives the restart mass, so it always beats the
        # uniform share (it need not be the argmax at high damping from a
        # line endpoint, where mass piles up on the neighbor)
        assert scores[source] > 1.0 / 9

    def test_empty_graph_uniform_preference_raises(self):
        adj = AdjacencyBuilder().freeze(0)
        engine = RandomWalkEngine(adj)
        with pytest.raises(GraphError):
            engine.uniform_preference()
