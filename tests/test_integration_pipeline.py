"""Cross-module integration tests on the synthesized small corpus.

These exercise realistic end-to-end flows a downstream user would run:
build everything from a raw database, reformulate, search with the
reformulations, and check the structural claims of the paper hold at
corpus scale (not just on the toy fixture).
"""

import pytest

from repro import (
    InvertedIndex,
    KeywordSearchEngine,
    Reformulator,
    ReformulatorConfig,
    TupleGraph,
)


@pytest.fixture(scope="module")
def reformulator(small_graph):
    return Reformulator(small_graph, ReformulatorConfig(n_candidates=10))


@pytest.fixture(scope="module")
def search(small_db, small_index):
    return KeywordSearchEngine(TupleGraph(small_db), small_index)


class TestEndToEnd:
    def test_reformulations_mostly_cohesive(
        self, reformulator, search, small_corpus
    ):
        """Suggestions of the TAT pipeline overwhelmingly have results —
        the whole point of the closeness factor."""
        from repro.data.workloads import WorkloadGenerator

        workloads = WorkloadGenerator(small_corpus, seed=3)
        total = cohesive = 0
        for wq in workloads.mixed_queries(6):
            for q in reformulator.reformulate(list(wq.keywords), k=5):
                total += 1
                cohesive += search.is_cohesive(list(q.keywords))
        assert total > 0
        assert cohesive / total >= 0.7

    def test_synonyms_never_cooccur_but_walk_connects(self, small_graph, small_corpus):
        """Corpus-scale version of the paper's central claim."""
        from repro.graph.cooccurrence import CooccurrenceSimilarity
        from repro.graph.similarity import SimilarityExtractor

        model = small_corpus.topic_model
        walk = SimilarityExtractor(small_graph)
        cooc = CooccurrenceSimilarity(small_graph)

        title = ("papers", "title")
        vocab = {
            t.text for t in small_graph.index.terms() if t.field == title
        }
        # pick up to 5 words whose cluster-mates are in the corpus
        checked = 0
        for word in sorted(vocab):
            mates = [
                m for m in vocab if m != word and model.are_synonyms(word, m)
            ]
            if not mates:
                continue
            walk_terms = {t for t, _s in walk.similar_terms(word, 25)}
            cooc_terms = {t for t, _s in cooc.similar_terms(word, 25)}
            assert not (set(mates) & cooc_terms), (
                f"{word}: synonyms leaked into co-occurrence list"
            )
            if set(mates) & walk_terms:
                checked += 1
            if checked >= 5:
                break
        assert checked >= 3  # walk finds synonyms for most targets

    def test_offline_precompute_speeds_online(self, small_graph):
        """After precompute, reformulation touches only caches."""
        reformulator = Reformulator(
            small_graph, ReformulatorConfig(n_candidates=8)
        )
        query = ["probabilistic", "query"]
        # warm offline caches
        reformulator.reformulate(query, k=5)
        import time

        start = time.perf_counter()
        reformulator.reformulate(query, k=5)
        warm = time.perf_counter() - start
        assert warm < 0.5  # interactive response once offline stage is hot

    def test_search_results_contain_matched_keywords(
        self, search, small_index
    ):
        results = search.search(["mining", "pattern"])
        for result in results.top(5):
            for keyword, ref in result.matches:
                texts = {
                    term.text for term, _tf in small_index.terms_of(ref)
                }
                assert keyword in texts

    def test_full_rebuild_from_scratch(self, small_db):
        """A user can wire every piece manually (no factory helpers)."""
        index = InvertedIndex(small_db).build()
        from repro import TATGraph

        graph = TATGraph(small_db, index)
        reformulator = Reformulator(graph)
        out = reformulator.reformulate(["clustering"], k=3)
        assert out

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestDeterminism:
    def test_same_seed_same_reformulations(self, small_corpus):
        from repro import synthesize_dblp

        config = small_corpus.config
        db2 = synthesize_dblp(config).database
        r1 = Reformulator.from_database(small_corpus.database)
        r2 = Reformulator.from_database(db2)
        q = ["probabilistic", "query"]
        out1 = [(s.text, round(s.score, 12)) for s in r1.reformulate(q, k=5)]
        out2 = [(s.text, round(s.score, 12)) for s in r2.reformulate(q, k=5)]
        assert out1 == out2
