"""Tests for repro.experiments.common (context builder + table renderer)."""

import pytest

from repro.errors import ReproError
from repro.experiments.common import (
    SCALES,
    build_context,
    clear_cache,
    format_table,
)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.5" in lines[2]
        assert len(lines) == 4

    def test_column_widths_expand(self):
        text = format_table(["x"], [["very-long-cell-value"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("very-long-cell-value")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestBuildContext:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError):
            build_context(scale="galactic")

    def test_scales_registry(self):
        assert set(SCALES) == {"small", "medium", "large"}
        assert SCALES["small"].n_papers < SCALES["medium"].n_papers

    def test_cache_returns_same_object(self):
        a = build_context(scale="small", seed=99)
        b = build_context(scale="small", seed=99)
        assert a is b

    def test_cache_bypass(self):
        a = build_context(scale="small", seed=99)
        b = build_context(scale="small", seed=99, use_cache=False)
        assert a is not b

    def test_clear_cache(self):
        a = build_context(scale="small", seed=98)
        clear_cache()
        b = build_context(scale="small", seed=98)
        assert a is not b

    def test_context_wires_everything(self):
        context = build_context(scale="small", seed=97)
        assert context.database is context.corpus.database
        assert set(context.reformulators) == {"tat", "cooccurrence", "rank"}
        assert context.graph.n_nodes > 0
        assert context.search.index is context.index

    def test_unknown_method_lookup(self):
        context = build_context(scale="small", seed=97)
        with pytest.raises(ReproError):
            context.reformulator("bogus")
