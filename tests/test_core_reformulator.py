"""End-to-end tests for repro.core.reformulator on the toy corpus."""

import pytest

from repro.core.reformulator import (
    ALGORITHMS,
    METHODS,
    Reformulator,
    ReformulatorConfig,
)
from repro.errors import ReformulationError


@pytest.fixture(scope="module")
def reformulator(toy_graph) -> Reformulator:
    return Reformulator(toy_graph, ReformulatorConfig(n_candidates=5))


class TestConfig:
    def test_unknown_method(self, toy_graph):
        with pytest.raises(ReformulationError):
            Reformulator(toy_graph, ReformulatorConfig(method="bogus"))

    def test_n_candidates_validated(self, toy_graph):
        with pytest.raises(ReformulationError):
            Reformulator(toy_graph, ReformulatorConfig(n_candidates=0))

    def test_methods_constant(self):
        assert set(METHODS) == {"tat", "cooccurrence", "rank"}

    def test_unknown_algorithm(self, reformulator):
        with pytest.raises(ReformulationError):
            reformulator.reformulate(["query"], algorithm="bogus")


class TestReformulate:
    def test_returns_at_most_k(self, reformulator):
        out = reformulator.reformulate(["probabilistic", "query"], k=3)
        assert 0 < len(out) <= 3

    def test_scores_descending(self, reformulator):
        out = reformulator.reformulate(["probabilistic", "query"], k=5)
        scores = [q.score for q in out]
        assert scores == sorted(scores, reverse=True)

    def test_identity_dropped(self, reformulator):
        out = reformulator.reformulate(["probabilistic", "query"], k=10)
        assert "probabilistic query" not in {q.text for q in out}

    def test_no_duplicate_texts(self, reformulator):
        out = reformulator.reformulate(["probabilistic", "query"], k=10)
        texts = [q.text for q in out]
        assert len(texts) == len(set(texts))

    def test_no_repeated_terms_within_query(self, reformulator):
        out = reformulator.reformulate(["probabilistic", "pattern"], k=10)
        for q in out:
            assert len(set(q.keywords)) == len(q.keywords)

    def test_algorithms_agree_on_scores(self, reformulator):
        query = ["probabilistic", "query"]
        outputs = {
            alg: [q.score for q in reformulator.reformulate(query, k=4, algorithm=alg)]
            for alg in ALGORITHMS
        }
        assert outputs["astar"] == pytest.approx(outputs["viterbi_topk"])
        assert outputs["astar"] == pytest.approx(outputs["brute_force"])

    def test_single_keyword_query(self, reformulator):
        out = reformulator.reformulate(["probabilistic"], k=3)
        assert out
        assert all(len(q.keywords) == 1 for q in out)

    def test_unknown_keyword_passes_through(self, reformulator):
        out = reformulator.reformulate(["zzzunknown", "query"], k=3)
        for q in out:
            assert q.terms[0] == "zzzunknown"

    def test_best_returns_single(self, reformulator):
        best = reformulator.best(["probabilistic", "query"])
        assert best.state_path
        assert best.score > 0

    def test_with_timing(self, reformulator):
        outcome = reformulator.reformulate_with_timing(
            ["probabilistic", "query"], k=3
        )
        assert outcome.queries
        assert outcome.total_seconds >= 0


class TestMethods:
    def test_from_database_constructor(self, toy_db):
        r = Reformulator.from_database(toy_db)
        assert r.reformulate(["probabilistic", "query"], k=2)

    def test_cooccurrence_method(self, toy_graph):
        r = Reformulator(
            toy_graph,
            ReformulatorConfig(method="cooccurrence", n_candidates=5),
        )
        out = r.reformulate(["probabilistic", "query"], k=3)
        assert out

    def test_rank_method(self, toy_graph):
        r = Reformulator(
            toy_graph, ReformulatorConfig(method="rank", n_candidates=5)
        )
        out = r.reformulate(["probabilistic", "query"], k=3)
        assert out
        scores = [q.score for q in out]
        assert scores == sorted(scores, reverse=True)

    def test_tat_finds_synonym_substitution(self, toy_graph):
        """With enough suggestions, venue-mates get substituted in —
        something co-occurrence candidates can never produce."""
        r = Reformulator(toy_graph, ReformulatorConfig(n_candidates=8))
        candidate_texts = {
            s.text for s in r.candidates.candidates_for("probabilistic")
        }
        assert "uncertain" in candidate_texts
        out = r.reformulate(["probabilistic", "query"], k=30)
        all_terms = {t for q in out for t in q.keywords}
        assert all_terms & {"uncertain", "data", "management"}

    def test_keep_identity_when_configured(self, toy_graph):
        r = Reformulator(
            toy_graph,
            ReformulatorConfig(n_candidates=5, drop_identity=False),
        )
        out = r.reformulate(["probabilistic", "query"], k=10)
        assert "probabilistic query" in {q.text for q in out}

    def test_void_states_render_shorter_query(self, toy_graph):
        r = Reformulator(
            toy_graph,
            ReformulatorConfig(
                n_candidates=5, include_void=True, drop_repeated_terms=False
            ),
        )
        out = r.reformulate(["probabilistic", "query"], k=20)
        assert out  # void machinery must not break decoding


class TestHmmConstruction:
    def test_build_hmm_exposed(self, reformulator):
        hmm = reformulator.build_hmm(["probabilistic", "query"])
        assert hmm.length == 2
        assert hmm.query == ("probabilistic", "query")
