"""Property-based tests for term keys and the relation stores.

Hypothesis drives arbitrary term keys — pipes, backslashes, unicode —
through the key codec and both serialization formats, and checks the
structural invariants of the stored relation lists (truncation length,
descending order).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.offline import (
    OfflinePrecomputer,
    TermRelationStore,
    _parse_term_key,
    _term_key,
)
from repro.offline_store import ShardedTermRelationStore, shard_of

from tests.strategies import field_terms

store_settings = settings(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)


class TestTermKeyCodec:
    @given(term=field_terms())
    @store_settings
    def test_roundtrip_any_term(self, term):
        assert _parse_term_key(_term_key(term)) == term

    @given(a=field_terms(), b=field_terms())
    @store_settings
    def test_injective(self, a, b):
        # distinct terms never collide on their serialized key
        if a != b:
            assert _term_key(a) != _term_key(b)

    def test_legacy_unescaped_key_still_parses(self):
        # v1 files wrote text raw; the historical split-at-first-two-pipes
        # reading must survive for them
        parsed = _parse_term_key("papers|title|a|b|c")
        assert parsed.field == ("papers", "title")
        assert parsed.text == "a|b|c"

    def test_malformed_key_raises(self):
        with pytest.raises(ReproError):
            _parse_term_key("just-one-part")


class TestShardAssignment:
    @given(term=field_terms(), n=st.integers(min_value=1, max_value=64))
    @store_settings
    def test_in_range_and_stable(self, term, n):
        key = _term_key(term)
        index = shard_of(key, n)
        assert 0 <= index < n
        assert shard_of(key, n) == index


@st.composite
def relation_stores(draw):
    """(terms, similar lists, closeness rows) for an arbitrary store."""
    terms = draw(
        st.lists(field_terms(), min_size=1, max_size=6, unique=True)
    )
    score = st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
    )
    rows = []
    for term in terms:
        others = draw(
            st.lists(field_terms(), min_size=0, max_size=4, unique=True)
        )
        similar = [(other, draw(score)) for other in others]
        closeness = {other: draw(score) for other in others}
        rows.append((term, similar, closeness))
    return rows


def _populate(graph, rows):
    store = TermRelationStore(graph)
    for term, similar, closeness in rows:
        store.put(term, similar, closeness)
    return store


class TestStoreRoundtrip:
    @given(rows=relation_stores())
    @store_settings
    def test_v1_roundtrip_identity(self, toy_graph, tmp_path_factory, rows):
        store = _populate(toy_graph, rows)
        path = tmp_path_factory.mktemp("prop") / "store.json"
        store.save(path)
        loaded = TermRelationStore.load(path, toy_graph)
        assert loaded._relations == store._relations

    @given(rows=relation_stores(), n_shards=st.integers(min_value=1, max_value=9))
    @store_settings
    def test_v2_roundtrip_identity(
        self, toy_graph, tmp_path_factory, rows, n_shards
    ):
        store = _populate(toy_graph, rows)
        root = store.save_sharded(
            tmp_path_factory.mktemp("prop") / "v2", n_shards=n_shards
        )
        loaded = TermRelationStore.load(root, toy_graph)
        assert isinstance(loaded, ShardedTermRelationStore)
        assert len(loaded) == len(store)
        assert dict(loaded._items()) == store._relations
        # every term resolves through the lazy single-shard path too
        for term, _similar, _closeness in rows:
            assert term in loaded

    @given(rows=relation_stores())
    @store_settings
    def test_terms_survive_both_formats(
        self, toy_graph, tmp_path_factory, rows
    ):
        store = _populate(toy_graph, rows)
        tmp = tmp_path_factory.mktemp("prop")
        store.save(tmp / "v1.json")
        store.save_sharded(tmp / "v2", n_shards=4)
        expected = sorted(map(repr, store.terms()))
        v1 = TermRelationStore.load(tmp / "v1.json", toy_graph)
        v2 = TermRelationStore.load(tmp / "v2", toy_graph)
        assert sorted(map(repr, v1.terms())) == expected
        assert sorted(map(repr, v2.terms())) == expected


class TestTruncationInvariants:
    @pytest.mark.parametrize("n_similar,closeness_top", [(1, 1), (3, 5), (50, 500)])
    def test_lists_truncated_and_descending(
        self, toy_graph, n_similar, closeness_top
    ):
        precomputer = OfflinePrecomputer(
            toy_graph,
            closeness=ClosenessExtractor(toy_graph, beam_width=None),
            n_similar=n_similar,
            closeness_top=closeness_top,
        )
        store = precomputer.build_store(batch_size=16)
        assert len(store) > 0
        for key in store._keys():
            relations = store._get(key)
            scores = [s for _, s in relations.similar]
            assert len(scores) <= n_similar
            assert scores == sorted(scores, reverse=True)
            assert len(relations.closeness) <= closeness_top
            assert all(v > 0 for v in relations.closeness.values())
