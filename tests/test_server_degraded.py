"""The server's degradation fallbacks against the full decode lanes.

Two agreement properties lock the degraded path to the cold path:

* the single-best Viterbi fallback (``DEGRADE_VITERBI``) must return the
  rank-1 result of the *full* top-k lanes when run on the same assembled
  plan — top-1 is the k=1 specialization of the same DP, not a separate
  approximation;
* the cached fallback (``DEGRADE_CACHED``) must return the identical
  full answer the cold path produced, bit for bit.

The HTTP-free handler methods are exercised directly (no sockets), so
deadline expiry is simulated with zero-budget :class:`Deadline` objects
and the tests stay deterministic.
"""

import pytest

from repro.core import astar_topk, astar_topk_vec, viterbi_top1, viterbi_topk
from repro.core.reformulator import ReformulatorConfig, _TOPK_DECODERS
from repro.core.viterbi import viterbi_top1_vec
from repro.live import LiveReformulator
from repro.server import (
    Deadline,
    DEGRADE_CACHED,
    DEGRADE_VITERBI,
    ReformulationServer,
    ServerConfig,
)

from tests.conftest import build_toy_database

QUERIES = [
    ["probabilistic", "query"],
    ["uncertain", "data"],
    ["pattern", "mining"],
    ["probabilistic"],
]


@pytest.fixture(scope="module")
def live():
    return LiveReformulator(
        build_toy_database(), ReformulatorConfig(n_candidates=6)
    )


@pytest.fixture()
def server(live):
    # No .start(): handle_reformulate is a plain method, sockets stay out.
    return ReformulationServer(live, ServerConfig(port=0))


class TestFallbackAgreesWithTopkRank1:
    """The single-best fallback is rank-1 of every full lane, same plan."""

    @pytest.mark.parametrize("keywords", QUERIES, ids="-".join)
    def test_top1_is_rank1_of_every_topk_lane(self, live, keywords):
        hmm = live.pipeline().build_hmm(keywords)
        expected = viterbi_top1_vec(hmm)
        assert viterbi_top1(hmm).state_path == expected.state_path
        assert viterbi_top1(hmm).score == expected.score
        for (algorithm, impl), decode in _TOPK_DECODERS.items():
            result = decode(hmm, 5)
            first = (result.queries if algorithm.startswith("astar") else result)[0]
            assert first.state_path == expected.state_path, (algorithm, impl)
            assert first.score == expected.score, (algorithm, impl)

    @pytest.mark.parametrize("keywords", QUERIES, ids="-".join)
    def test_degraded_single_matches_raw_decode(self, server, live, keywords):
        """``_degraded_single`` with a cold cache == the raw top-1 decode
        == rank-1 of the full A* lane on the same assembled plan."""
        result, mode = server._degraded_single(keywords, 4, "astar", "hmm")
        assert mode == DEGRADE_VITERBI
        suggestions = list(result.suggestions)
        assert len(suggestions) == 1
        hmm = live.pipeline().build_hmm(keywords)
        top1 = viterbi_top1_vec(hmm)
        assert suggestions[0].state_path == top1.state_path
        assert suggestions[0].score == top1.score
        full = astar_topk_vec(hmm, 4).queries
        assert suggestions[0].state_path == full[0].state_path
        assert suggestions[0].score == full[0].score
        assert full == astar_topk(hmm, 4).queries

    def test_reference_impl_live_best_is_bit_identical(self):
        """`best()` under decode_impl="reference" matches the default lane."""
        ref = LiveReformulator(
            build_toy_database(),
            ReformulatorConfig(n_candidates=6, decode_impl="reference"),
        )
        vec = LiveReformulator(
            build_toy_database(),
            ReformulatorConfig(n_candidates=6, decode_impl="vectorized"),
        )
        for keywords in QUERIES:
            a, b = ref.best(keywords), vec.best(keywords)
            assert (a.state_path, a.score, a.terms) == (
                b.state_path, b.score, b.terms,
            )


class TestDegradedHandler:
    """handle_reformulate under expired deadlines (no sockets)."""

    def test_expired_deadline_serves_viterbi_fallback(self, server, live):
        response = server.handle_reformulate(
            {"keywords": ["probabilistic", "query"], "k": 3}, Deadline(0.0)
        )
        assert response["degraded"] is True
        assert response["degraded_mode"] == DEGRADE_VITERBI
        assert len(response["suggestions"]) == 1
        best = live.best(["probabilistic", "query"])
        got = response["suggestions"][0]
        assert tuple(got["state_path"]) == best.state_path
        assert got["score"] == best.score
        assert got["terms"] == list(best.terms)

    def test_cached_degrade_returns_identical_full_answer(self, server):
        payload = {"keywords": ["pattern", "mining"], "k": 3}
        warm = server.handle_reformulate(payload, Deadline(None))
        assert warm["degraded"] is False and warm["degraded_mode"] is None
        degraded = server.handle_reformulate(payload, Deadline(0.0))
        assert degraded["degraded"] is True
        assert degraded["degraded_mode"] == DEGRADE_CACHED
        # The cached fallback is the full cold answer, bit for bit.
        assert degraded["suggestions"] == warm["suggestions"]
        assert degraded["version"] == warm["version"]

    def test_cache_key_is_parameter_sensitive(self, server):
        """A warm cache for (q, k=3) must not satisfy (q, k=2): the
        fallback drops to single-best instead of serving the wrong k."""
        payload = {"keywords": ["uncertain", "data"], "k": 3}
        server.handle_reformulate(payload, Deadline(None))
        response = server.handle_reformulate(
            {"keywords": ["uncertain", "data"], "k": 2}, Deadline(0.0)
        )
        assert response["degraded_mode"] == DEGRADE_VITERBI

    def test_stale_pipeline_skips_result_cache(self, server, live):
        """After a mutation the cached full answer is unreachable — the
        fallback must re-decode (top-1) rather than serve stale results."""
        payload = {"keywords": ["probabilistic", "pattern"], "k": 3}
        server.handle_reformulate(payload, Deadline(None))
        live.insert(
            "papers",
            {"pid": 90, "title": "stale probe", "cid": 0, "year": 2013},
        )
        assert live.is_stale
        response = server.handle_reformulate(payload, Deadline(0.0))
        assert response["degraded_mode"] == DEGRADE_VITERBI

    def test_degraded_counter_increments(self, server):
        before = server.degraded_served
        server.handle_reformulate(
            {"keywords": ["probabilistic"], "k": 2}, Deadline(0.0)
        )
        assert server.degraded_served == before + 1


class TestDeadlineEdgeCases:
    """Admission-time deadline/estimator edges for the degrade decision."""

    def test_zero_budget_deadline_expired_at_admission(self):
        deadline = Deadline(0.0)
        assert not deadline.unlimited
        assert deadline.expired()
        assert deadline.remaining() <= 0.0

    def test_expired_deadline_always_degrades(self, server):
        # Even the floor estimate exceeds a spent budget.
        from repro.server import LatencyEstimator, should_degrade

        estimator = LatencyEstimator(floor_s=0.001)
        assert should_degrade(Deadline(0.0), estimator, safety=1.0)

    def test_fast_cold_path_observations_floor_the_estimate(self):
        """Timings far below the floor never talk the estimator into
        admitting sub-floor deadlines: the floor wins."""
        from repro.server import LatencyEstimator, should_degrade

        estimator = LatencyEstimator(floor_s=0.005, alpha=0.2)
        for _ in range(50):
            estimator.observe(1e-6)
        assert estimator.samples == 50
        assert estimator.estimate() == 0.005
        assert should_degrade(Deadline(0.001), estimator, safety=1.5)
        assert not should_degrade(Deadline(1.0), estimator, safety=1.5)

    def test_estimator_zero_samples_uses_floor(self):
        from repro.server import LatencyEstimator

        estimator = LatencyEstimator(floor_s=0.25)
        assert estimator.samples == 0
        assert estimator.estimate() == 0.25
