"""Unit tests for repro.data.topics."""

import pytest

from repro.data.topics import DEFAULT_TOPICS, GENERIC_WORDS, Topic, TopicModel


@pytest.fixture(scope="module")
def model() -> TopicModel:
    return TopicModel()


class TestTopicUniverse:
    def test_twelve_topics(self, model):
        assert len(model) == 12

    def test_topic_ids_match_positions(self, model):
        for i, topic in enumerate(model.topics):
            assert topic.topic_id == i

    def test_vocabulary_flattens_clusters(self):
        topic = Topic(0, "t", (("a", "b"), ("c",)))
        assert topic.vocabulary == ("a", "b", "c")

    def test_every_topic_has_synonym_cluster(self, model):
        """Each topic must own at least one multi-word cluster so the
        synonym phenomenon exists everywhere."""
        for topic in model.topics:
            assert any(len(c) > 1 for c in topic.clusters), topic.name

    def test_related_topics_resolve(self, model):
        for topic in model.topics:
            for name in topic.related:
                model.by_name(name)  # must not raise

    def test_generic_words_disjoint_from_topics(self, model):
        for word in GENERIC_WORDS:
            assert not model.topics_of_word(word), word


class TestLookups:
    def test_topics_of_word(self, model):
        assert model.topics_of_word("probabilistic") == {1}

    def test_word_in_multiple_topics(self, model):
        # "tree" is xml vocab; "random" is in graph topic... check a word
        # that appears twice across the universe, if any; fall back to
        # asserting the lookup returns a set.
        assert isinstance(model.topics_of_word("query"), set)

    def test_unknown_word_empty(self, model):
        assert model.topics_of_word("zzz") == set()

    def test_vocabulary_sorted_unique(self, model):
        vocab = model.vocabulary
        assert vocab == sorted(set(vocab))

    def test_by_name(self, model):
        assert model.by_name("data mining").topic_id == 2


class TestRelations:
    def test_synonyms_within_cluster(self, model):
        assert model.are_synonyms("probabilistic", "uncertain")
        assert model.are_synonyms("uncertain", "uncertainty")

    def test_same_word_is_synonym(self, model):
        assert model.are_synonyms("xml", "xml")

    def test_same_topic_not_synonym(self, model):
        assert not model.are_synonyms("probabilistic", "lineage")

    def test_share_topic(self, model):
        assert model.share_topic("probabilistic", "lineage")
        assert not model.share_topic("probabilistic", "twig")

    def test_related_topic_ids_include_self(self, model):
        assert 1 in model.related_topic_ids(1)

    def test_topics_related_symmetric_enough(self, model):
        """topics_related checks both directions of the declaration."""
        xml = model.by_name("xml data management").topic_id
        ks = model.by_name("keyword search").topic_id
        assert model.topics_related(xml, ks)
        assert model.topics_related(ks, xml)

    def test_unrelated_topics(self, model):
        xml = model.by_name("xml data management").topic_id
        txn = model.by_name("transaction processing").topic_id
        assert not model.topics_related(xml, txn)

    def test_custom_universe(self):
        topics = (
            Topic(0, "alpha", (("a", "b"),), related=("beta",)),
            Topic(1, "beta", (("c",),)),
        )
        model = TopicModel(topics)
        assert model.are_synonyms("a", "b")
        assert model.topics_related(0, 1)
