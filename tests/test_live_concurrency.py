"""Thread-safety and batch cache-routing regressions for LiveReformulator.

Covers the serving-daemon requirements on the in-process wrapper:

* ``pipeline()`` check-then-rebuild is serialized — concurrent queries
  racing a mutation trigger exactly one rebuild;
* ``insert``/``reformulate`` hammered from threads never corrupts the
  version counter or returns through a half-built pipeline;
* ``reformulate_many`` routes every batch entry through the
  version-aware result LRU, sharing entries with the single-query path
  and counting staleness bypasses per entry.
"""

import threading

import pytest

from repro import obs
from repro.core.reformulator import ReformulatorConfig
from repro.live import LiveReformulator

from tests.conftest import build_toy_database


QUERY = ["probabilistic", "query"]
OTHER = ["pattern", "mining"]


def make_live(result_cache_size: int = 64) -> LiveReformulator:
    return LiveReformulator(
        build_toy_database(),
        ReformulatorConfig(
            n_candidates=6, result_cache_size=result_cache_size
        ),
    )


def paper_row(i: int) -> dict:
    return {
        "pid": 9000 + i,
        "title": f"streaming threads paper {i}",
        "cid": 1,
        "year": 2012,
    }


class TestPipelineRebuildRace:
    def test_concurrent_pipelines_after_mutation_rebuild_once(self):
        live = make_live()
        live.pipeline()
        version = live.version
        live.insert("papers", paper_row(0))
        barrier = threading.Barrier(8)
        pipelines = []
        lock = threading.Lock()
        errors = []

        def query():
            try:
                barrier.wait(timeout=10.0)
                pipeline = live.pipeline()
                with lock:
                    pipelines.append(pipeline)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=query) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        # exactly one rebuild: one version bump, one shared pipeline
        assert live.version == version + 1
        assert len({id(pipeline) for pipeline in pipelines}) == 1
        assert not live.is_stale

    def test_hammer_insert_and_reformulate(self):
        """The regression this subsystem exists for: writers inserting
        while readers reformulate must never crash or skew the version."""
        live = make_live()
        live.pipeline()
        n_writers, n_readers, rounds = 2, 4, 6
        start_version = live.version
        errors = []
        go = threading.Event()

        def writer(worker: int):
            try:
                go.wait(timeout=10.0)
                for round_no in range(rounds):
                    live.insert(
                        "papers", paper_row(100 * worker + round_no)
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                go.wait(timeout=10.0)
                for _ in range(rounds):
                    suggestions = live.reformulate(QUERY, k=3)
                    assert suggestions and suggestions[0].score > 0
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(n_writers)
        ] + [threading.Thread(target=reader) for _ in range(n_readers)]
        for thread in threads:
            thread.start()
        go.set()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors
        # every insert eventually lands: a final query sees all rows
        live.reformulate(QUERY, k=3)
        assert not live.is_stale
        n_rows = len(live.database.table("papers"))
        assert n_rows >= 4 + n_writers * rounds
        # versions moved monotonically and boundedly: at most one rebuild
        # per query round plus the final refresh
        assert start_version < live.version <= start_version + (
            n_writers * rounds + 1
        )


class TestReformulateManyCacheRouting:
    def test_batch_populates_and_hits_the_result_cache(self):
        live = make_live()
        live.pipeline()  # build now: a stale batch would bypass the lookup
        cache = live.result_cache
        first = live.reformulate_many([QUERY, OTHER], k=3)
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 2
        assert len(cache) == 2
        again = live.reformulate_many([QUERY, OTHER], k=3)
        stats = cache.stats()
        assert stats.hits == 2 and stats.misses == 2
        assert again == first

    def test_batch_and_single_share_entries(self):
        live = make_live()
        single = live.reformulate(QUERY, k=3)
        hits_before = live.result_cache.stats().hits
        batched = live.reformulate_many([QUERY, OTHER], k=3)
        assert live.result_cache.stats().hits == hits_before + 1
        assert batched[0] == single
        # and the batch-decoded entry now serves the single-query path
        assert live.reformulate(OTHER, k=3) == batched[1]

    def test_partial_batch_hit_decodes_only_misses(self):
        live = make_live()
        live.reformulate_many([QUERY], k=3)
        decoded = []
        pipeline = live.pipeline()
        original = pipeline.reformulate_many

        def spying(queries, **kwargs):
            decoded.extend([list(query) for query in queries])
            return original(queries, **kwargs)

        pipeline.reformulate_many = spying
        try:
            live.reformulate_many([QUERY, OTHER], k=3)
        finally:
            pipeline.reformulate_many = original
        assert decoded == [OTHER]

    def test_distinct_parameters_do_not_collide(self):
        live = make_live()
        top2 = live.reformulate_many([QUERY], k=2)[0]
        top3 = live.reformulate_many([QUERY], k=3)[0]
        assert len(top2) <= 2
        assert len(top3) >= len(top2)
        viterbi = live.reformulate_many(
            [QUERY], k=2, algorithm="viterbi_topk"
        )[0]
        assert [s.text for s in viterbi]  # decoded, not top2 served back

    def test_stale_batch_bypasses_and_counts_per_entry(self):
        live = make_live()
        live.reformulate_many([QUERY, OTHER], k=3)
        bypasses = live.cache_bypasses
        live.insert("papers", paper_row(0))
        assert live.is_stale
        obs.reset()
        with obs.enabled():
            live.reformulate_many([QUERY, OTHER], k=3)
        try:
            assert live.cache_bypasses == bypasses + 2
            counter = obs.registry().get(
                "repro_live_result_cache_bypass_total"
            )
            assert counter is not None and counter.value == 2.0
        finally:
            obs.reset()
        # the rebuild re-populated the cache at the new version
        hits_before = live.result_cache.stats().hits
        live.reformulate_many([QUERY, OTHER], k=3)
        assert live.result_cache.stats().hits == hits_before + 2

    def test_matches_single_query_results_exactly(self):
        live = make_live()
        batched = live.reformulate_many([QUERY, OTHER], k=4)
        fresh = make_live()
        for query, suggestions in zip([QUERY, OTHER], batched):
            expected = fresh.reformulate(query, k=4)
            assert [
                (s.text, s.score, s.state_path) for s in suggestions
            ] == [(s.text, s.score, s.state_path) for s in expected]

    def test_cache_disabled_still_batches(self):
        live = make_live(result_cache_size=0)
        assert live.result_cache is None
        results = live.reformulate_many([QUERY, OTHER], k=3, workers=2)
        assert len(results) == 2 and all(results)

    def test_concurrent_batches_share_cache_without_errors(self):
        live = make_live()
        live.pipeline()
        errors = []
        go = threading.Event()

        def worker():
            try:
                go.wait(timeout=10.0)
                for _ in range(5):
                    results = live.reformulate_many([QUERY, OTHER], k=3)
                    assert len(results) == 2
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        go.set()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        stats = live.result_cache.stats()
        assert stats.hits + stats.misses == 6 * 5 * 2
