"""Cross-module property-based invariants (hypothesis).

Random databases are generated from a constrained universe and the
derived structures (CSV round-trips, inverted index, TAT graph) are
checked against their defining invariants.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex
from repro.storage.csvio import dump_table_csv, load_table_csv
from repro.storage.database import Database
from repro.storage.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.storage.schemaspec import schema_from_spec, schema_to_spec

words = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)
titles = st.lists(words, min_size=1, max_size=6).map(" ".join)


@st.composite
def small_databases(draw):
    """A random two-table database: parents and children with FK."""
    schema = DatabaseSchema()
    schema.add_table(TableSchema(
        "parents",
        [Column("id", "int", nullable=False), Column("name", "text")],
        primary_key="id",
        atomic_fields=["name"],
    ))
    schema.add_table(TableSchema(
        "children",
        [
            Column("id", "int", nullable=False),
            Column("body", "text"),
            Column("parent", "int"),
        ],
        primary_key="id",
    ))
    schema.add_foreign_key(ForeignKey("children", "parent", "parents", "id"))
    database = Database(schema)

    n_parents = draw(st.integers(1, 4))
    for pid in range(n_parents):
        database.insert(
            "parents", {"id": pid, "name": draw(words)}
        )
    n_children = draw(st.integers(0, 8))
    for cid in range(n_children):
        database.insert("children", {
            "id": cid,
            "body": draw(titles),
            "parent": draw(st.integers(0, n_parents - 1)),
        })
    return database


class TestCsvRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(small_databases())
    def test_roundtrip_preserves_rows(self, database):
        import tempfile
        from pathlib import Path

        tmp = Path(tempfile.mkdtemp(prefix="repro-csv-"))
        clone = Database(database.schema, enforce_fk=False)
        for table_name in database.table_names:
            path = tmp / f"{table_name}.csv"
            dump_table_csv(database, table_name, path)
            load_table_csv(clone, table_name, path)
        clone.check_integrity()
        for table_name in database.table_names:
            original = list(database.table(table_name).scan())
            loaded = list(clone.table(table_name).scan())
            assert loaded == original


class TestSchemaSpecRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(small_databases())
    def test_spec_roundtrip(self, database):
        spec = schema_to_spec(database.schema)
        rebuilt = schema_from_spec(spec)
        assert schema_to_spec(rebuilt) == spec


class TestIndexInvariants:
    @settings(max_examples=25, deadline=None)
    @given(small_databases())
    def test_postings_consistency(self, database):
        index = InvertedIndex(database).build()
        for term in index.terms():
            postings = index.postings(term)
            # df is the posting count; total tf sums the postings
            assert index.df(term) == len(postings)
            assert index.total_tf(term) == sum(p.tf for p in postings)
            assert index.df(term) <= index.doc_count
            # every posting is reflected in the forward index
            for posting in postings:
                forward = dict(index.terms_of(posting.ref))
                assert forward[term] == posting.tf

    @settings(max_examples=25, deadline=None)
    @given(small_databases())
    def test_idf_positive_and_antitone(self, database):
        index = InvertedIndex(database).build()
        terms = sorted(index.terms(), key=str)
        for a in terms:
            assert index.idf(a) > 0
            for b in terms:
                if index.df(a) < index.df(b):
                    assert index.idf(a) >= index.idf(b)


class TestGraphInvariants:
    @settings(max_examples=20, deadline=None)
    @given(small_databases())
    def test_tat_structure(self, database):
        index = InvertedIndex(database).build()
        graph = TATGraph(database, index)
        stats = graph.stats()
        # node accounting
        assert stats["tuple_nodes"] == len(database)
        assert stats["term_nodes"] == index.vocabulary_size()
        # adjacency symmetric with positive weights
        m = graph.adjacency.matrix
        assert (m != m.T).nnz == 0
        assert (m.data > 0).all()

    @settings(max_examples=20, deadline=None)
    @given(small_databases())
    def test_every_term_touches_its_tuples(self, database):
        index = InvertedIndex(database).build()
        graph = TATGraph(database, index)
        for term in index.terms():
            term_id = graph.term_node_id(term)
            neighbor_refs = {
                graph.node(n).payload for n, _w in graph.neighbors(term_id)
            }
            posting_refs = {p.ref for p in index.postings(term)}
            assert posting_refs <= neighbor_refs
