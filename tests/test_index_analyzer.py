"""Unit tests for repro.index.analyzer."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.analyzer import DEFAULT_STOPWORDS, Analyzer


@pytest.fixture()
def analyzer() -> Analyzer:
    return Analyzer()


class TestTokenize:
    def test_lowercases(self, analyzer):
        assert analyzer.tokenize("Probabilistic QUERY") == [
            "probabilistic", "query",
        ]

    def test_strips_punctuation(self, analyzer):
        assert analyzer.tokenize("top-k, search!") == ["top-k", "search"]

    def test_keeps_duplicates(self, analyzer):
        assert analyzer.tokenize("query query") == ["query", "query"]

    def test_drops_stopwords(self, analyzer):
        assert analyzer.tokenize("the query of data") == ["query", "data"]

    def test_drops_short_tokens(self, analyzer):
        assert analyzer.tokenize("a b xy") == ["xy"]

    def test_numbers_kept(self, analyzer):
        assert analyzer.tokenize("2pc protocol") == ["2pc", "protocol"]

    def test_empty_string(self, analyzer):
        assert analyzer.tokenize("") == []

    def test_custom_stopwords(self):
        analyzer = Analyzer(stopwords=["query"])
        assert analyzer.tokenize("the query") == ["the"]

    def test_no_stopwords(self):
        analyzer = Analyzer(stopwords=frozenset())
        assert "the" in analyzer.tokenize("the query")

    def test_min_token_len(self):
        analyzer = Analyzer(min_token_len=4)
        assert analyzer.tokenize("xml twig join") == ["twig", "join"]


class TestNormalize:
    def test_lowercase_and_collapse(self, analyzer):
        assert analyzer.normalize("  Christian   S. Jensen ") == (
            "christian s. jensen"
        )

    def test_empty(self, analyzer):
        assert analyzer.normalize("   ") == ""


class TestAnalyze:
    def test_atomic_single_term(self, analyzer):
        assert analyzer.analyze("Jiawei Han", atomic=True) == ["jiawei han"]

    def test_atomic_empty(self, analyzer):
        assert analyzer.analyze("  ", atomic=True) == []

    def test_atomic_keeps_stopwords(self, analyzer):
        # atomic values are never stopword-filtered
        assert analyzer.analyze("the who", atomic=True) == ["the who"]

    def test_segmented_path(self, analyzer):
        assert analyzer.analyze("XML twig joins") == ["xml", "twig", "joins"]


class TestProperties:
    @given(st.text())
    def test_tokens_are_normalized(self, text):
        analyzer = Analyzer()
        for token in analyzer.tokenize(text):
            assert token == token.lower()
            assert len(token) >= analyzer.min_token_len
            assert token not in DEFAULT_STOPWORDS

    @given(st.text())
    def test_tokenize_idempotent_on_join(self, text):
        analyzer = Analyzer()
        tokens = analyzer.tokenize(text)
        assert analyzer.tokenize(" ".join(tokens)) == tokens

    @given(st.text(alphabet=string.ascii_letters + " ", max_size=80))
    def test_normalize_idempotent(self, text):
        analyzer = Analyzer()
        once = analyzer.normalize(text)
        assert analyzer.normalize(once) == once
