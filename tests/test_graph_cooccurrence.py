"""Unit tests for repro.graph.cooccurrence on the toy corpus."""

import pytest

from repro.errors import GraphError
from repro.graph.cooccurrence import CooccurrenceSimilarity
from repro.index.inverted import FieldTerm

TITLE = ("papers", "title")


def node_of(graph, text, field=TITLE):
    return graph.term_node_id(FieldTerm(field, text))


class TestScores:
    def test_title_mates_positive(self, toy_graph, toy_cooccurrence):
        prob = node_of(toy_graph, "probabilistic")
        query = node_of(toy_graph, "query")
        assert toy_cooccurrence.similarity(prob, query) > 0

    def test_synonyms_invisible(self, toy_graph, toy_cooccurrence):
        """The structural limitation the paper exploits: 'uncertain'
        never co-occurs with 'probabilistic' in a title, so frequent
        co-occurrence similarity is exactly zero."""
        prob = node_of(toy_graph, "probabilistic")
        uncertain = node_of(toy_graph, "uncertain")
        assert toy_cooccurrence.similarity(prob, uncertain) == 0.0

    def test_scores_normalized(self, toy_graph, toy_cooccurrence):
        prob = node_of(toy_graph, "probabilistic")
        scores = toy_cooccurrence._scores_from(prob)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_same_class_only(self, toy_graph, toy_cooccurrence):
        prob = node_of(toy_graph, "probabilistic")
        for sim in toy_cooccurrence.similar_nodes(prob, 20):
            assert toy_graph.class_of(sim.node_id) == TITLE

    def test_counts_match_hand_computation(self, toy_graph, toy_cooccurrence):
        """probabilistic co-occurs once each with query, answering,
        pattern, discovery -> each gets 1/4 after normalization."""
        prob = node_of(toy_graph, "probabilistic")
        scores = {
            toy_graph.node(s.node_id).text: s.score
            for s in toy_cooccurrence.similar_nodes(prob, 10)
        }
        assert scores == {
            "query": pytest.approx(0.25),
            "answering": pytest.approx(0.25),
            "pattern": pytest.approx(0.25),
            "discovery": pytest.approx(0.25),
        }

    def test_author_names_have_no_cooccurrence(self, toy_graph, toy_cooccurrence):
        """An atomic name is alone in its tuple: empty similar list."""
        bob = node_of(toy_graph, "bob", ("authors", "name"))
        assert toy_cooccurrence.similar_nodes(bob, 10) == []


class TestInterface:
    def test_top_n_validation(self, toy_graph, toy_cooccurrence):
        prob = node_of(toy_graph, "probabilistic")
        with pytest.raises(GraphError):
            toy_cooccurrence.similar_nodes(prob, 0)

    def test_tuple_node_rejected(self, toy_graph, toy_cooccurrence):
        tuple_id = toy_graph.tuple_node_id(("papers", 0))
        with pytest.raises(GraphError):
            toy_cooccurrence.similar_nodes(tuple_id, 5)

    def test_similar_terms_text_interface(self, toy_cooccurrence):
        terms = dict(toy_cooccurrence.similar_terms("pattern", 10))
        assert set(terms) == {
            "frequent", "mining", "probabilistic", "discovery",
        }

    def test_sorted_descending(self, toy_graph, toy_cooccurrence):
        prob = node_of(toy_graph, "pattern")
        scores = [s.score for s in toy_cooccurrence.similar_nodes(prob, 10)]
        assert scores == sorted(scores, reverse=True)

    def test_caching(self, toy_graph):
        cooc = CooccurrenceSimilarity(toy_graph)
        prob = node_of(toy_graph, "pattern")
        cooc.similar_nodes(prob, 5)
        assert cooc.cache_size() == 1
        cooc.precompute([node_of(toy_graph, "mining")])
        assert cooc.cache_size() == 2
        cooc.clear_cache()
        assert cooc.cache_size() == 0

    def test_interchangeable_with_walk_interface(self, toy_graph):
        """Both similarity backends expose the same surface."""
        from repro.graph.similarity import SimilarityExtractor

        walk = SimilarityExtractor(toy_graph)
        cooc = CooccurrenceSimilarity(toy_graph)
        for backend in (walk, cooc):
            assert hasattr(backend, "similar_nodes")
            assert hasattr(backend, "similarity")
            assert hasattr(backend, "similar_terms")
            assert hasattr(backend, "precompute")
