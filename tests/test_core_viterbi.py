"""Unit tests for repro.core.viterbi, cross-checked against brute force.

The property-based tests are the heart: on random HMMs, top-1 Viterbi,
Algorithm 2 (extended top-k Viterbi) and the exhaustive oracle must agree
on scores.
"""

import pytest
from hypothesis import given, settings

from repro.core.enumeration import brute_force_topk
from repro.core.viterbi import (
    path_scores_consistent,
    viterbi_table,
    viterbi_top1,
    viterbi_topk,
)
from repro.errors import ReformulationError

from tests.strategies import hmms


class TestTop1:
    @settings(max_examples=60, deadline=None)
    @given(hmms())
    def test_matches_brute_force_score(self, hmm):
        best = viterbi_top1(hmm)
        oracle = brute_force_topk(hmm, 1)[0]
        assert best.score == pytest.approx(oracle.score, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(hmms(allow_zeros=False))
    def test_matches_brute_force_path_when_unique(self, hmm):
        """With strictly positive weights ties are measure-zero, so the
        paths themselves almost always agree; compare scores to stay
        robust to exact ties."""
        best = viterbi_top1(hmm)
        oracle = brute_force_topk(hmm, 1)[0]
        assert best.score == pytest.approx(oracle.score, rel=1e-9)

    def test_score_consistent_with_eq10(self):
        from tests.test_core_hmm import build_tiny

        hmm = build_tiny()
        best = viterbi_top1(hmm)
        assert best.score == pytest.approx(hmm.path_score(best.state_path))


class TestTopK:
    @settings(max_examples=60, deadline=None)
    @given(hmms())
    def test_matches_brute_force_scores(self, hmm):
        k = 5
        ours = viterbi_topk(hmm, k)
        oracle = brute_force_topk(hmm, k)
        assert len(ours) == len(oracle)
        for a, b in zip(ours, oracle):
            assert a.score == pytest.approx(b.score, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(hmms())
    def test_sorted_descending(self, hmm):
        results = viterbi_topk(hmm, 6)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    @settings(max_examples=40, deadline=None)
    @given(hmms())
    def test_no_duplicate_paths(self, hmm):
        results = viterbi_topk(hmm, 8)
        paths = [r.state_path for r in results]
        assert len(paths) == len(set(paths))

    @settings(max_examples=40, deadline=None)
    @given(hmms())
    def test_scores_recomputable(self, hmm):
        results = viterbi_topk(hmm, 5)
        assert path_scores_consistent(hmm, results)

    @settings(max_examples=30, deadline=None)
    @given(hmms())
    def test_k1_equals_top1(self, hmm):
        assert viterbi_topk(hmm, 1)[0].score == pytest.approx(
            viterbi_top1(hmm).score, abs=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(hmms())
    def test_k_larger_than_space(self, hmm):
        results = viterbi_topk(hmm, hmm.search_space + 10)
        assert len(results) == hmm.search_space

    def test_k_validation(self):
        from tests.test_core_hmm import build_tiny

        with pytest.raises(ReformulationError):
            viterbi_topk(build_tiny(), 0)


class TestTable:
    def test_table_shapes(self):
        from tests.test_core_hmm import build_tiny

        hmm = build_tiny()
        table = viterbi_table(hmm)
        assert len(table.scores) == hmm.length
        assert table.backpointers[0].tolist() == [-1, -1]

    def test_first_step_is_pi_times_emission(self):
        from tests.test_core_hmm import build_tiny

        hmm = build_tiny()
        table = viterbi_table(hmm)
        expected = hmm.pi * hmm.emissions[0]
        assert table.scores[0].tolist() == pytest.approx(expected.tolist())
