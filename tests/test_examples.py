"""Smoke tests: every example script runs end to end.

Examples are the first thing a new user executes; these tests keep them
from rotting.  Each example's ``main()`` is run in-process with stdout
captured and checked for its headline output.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "reformulated suggestions:" in out
        assert "similar terms of 'probabilistic'" in out

    def test_bibliographic_explore(self):
        out = run_example("bibliographic_explore")
        assert "-- search results" in out
        assert "-- reformulated queries (side panel) --" in out

    def test_ecommerce_catalog(self):
        out = run_example("ecommerce_catalog")
        assert "shopper query: 'wireless headphones'" in out
        assert "cordless" in out or "bluetooth" in out

    def test_term_relations_offline(self):
        out = run_example("term_relations_offline")
        assert "== similar terms of 'uncertain' ==" in out
        assert "== close conferences of 'uncertain' ==" in out

    def test_knowledge_graph(self):
        out = run_example("knowledge_graph")
        assert "directed_by" in out or "entities" in out
        assert "<-- synonym" in out

    def test_faceted_session(self):
        out = run_example("faceted_session")
        assert "facet for position" in out
        assert "accepted suggestion rank:" in out

    def test_figure4_walkthrough(self):
        out = run_example("figure4_walkthrough")
        assert "*probabilistic" in out
        assert "never co-occurs!" in out
        assert "graph tat {" in out
