"""Unit tests for repro.eval.timing."""

import time

import pytest

from repro.errors import ReproError
from repro.eval.timing import (
    TimingStats,
    grouped_timings,
    measure,
    measure_many,
)


class TestTimingStats:
    def test_from_samples(self):
        stats = TimingStats.from_samples([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.total == 6.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            TimingStats.from_samples([])


class TestMeasure:
    def test_returns_result_and_time(self):
        seconds, result = measure(lambda: 42)
        assert result == 42
        assert seconds >= 0

    def test_measures_sleep(self):
        seconds, _ = measure(lambda: time.sleep(0.01))
        assert seconds >= 0.009

    def test_measure_many_stats(self):
        stats = measure_many(lambda: None, repeats=3, warmup=1)
        assert stats.count == 3

    def test_measure_many_warmup_excluded(self):
        calls = []
        stats = measure_many(lambda: calls.append(1), repeats=2, warmup=2)
        assert len(calls) == 4
        assert stats.count == 2

    def test_repeats_validated(self):
        with pytest.raises(ReproError):
            measure_many(lambda: None, repeats=0)


class TestGroupedTimings:
    def test_groups_by_key(self):
        items = [1, 1, 2, 2, 2]
        grouped = grouped_timings(items, key=lambda x: x, run=lambda x: None)
        assert grouped[1].count == 2
        assert grouped[2].count == 3

    def test_keys_sorted(self):
        grouped = grouped_timings(
            [3, 1, 2], key=lambda x: x, run=lambda x: None
        )
        assert list(grouped) == [1, 2, 3]

    def test_run_receives_item(self):
        seen = []
        grouped_timings([5, 6], key=lambda x: 0, run=seen.append)
        assert seen == [5, 6]
