"""Unit tests for repro.eval.timing."""

import time

import pytest

from repro.errors import ReproError
from repro.eval.timing import (
    TimingStats,
    grouped_timings,
    measure,
    measure_many,
)


class TestTimingStats:
    def test_from_samples(self):
        stats = TimingStats.from_samples([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.total == 6.0
        assert stats.median == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            TimingStats.from_samples([])

    def test_median_even_count_interpolates(self):
        stats = TimingStats.from_samples([1.0, 2.0, 3.0, 10.0])
        assert stats.median == 2.5

    def test_median_unsorted_input(self):
        stats = TimingStats.from_samples([3.0, 1.0, 2.0])
        assert stats.median == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_p95_single_sample(self):
        stats = TimingStats.from_samples([4.2])
        assert stats.median == 4.2
        assert stats.p95 == 4.2
        assert stats.maximum == 4.2

    def test_p95_interpolates_toward_tail(self):
        samples = [float(i) for i in range(1, 21)]  # 1..20
        stats = TimingStats.from_samples(samples)
        # position 0.95 * 19 = 18.05 -> between samples 19 and 20
        assert stats.p95 == pytest.approx(19.05)
        assert stats.median == pytest.approx(10.5)

    def test_p95_bounded_by_extremes(self):
        stats = TimingStats.from_samples([0.5, 0.1, 0.9, 0.2, 0.7])
        assert stats.minimum <= stats.median <= stats.p95 <= stats.maximum


class TestMeasure:
    def test_returns_result_and_time(self):
        seconds, result = measure(lambda: 42)
        assert result == 42
        assert seconds >= 0

    def test_measures_sleep(self):
        seconds, _ = measure(lambda: time.sleep(0.01))
        assert seconds >= 0.009

    def test_measure_many_stats(self):
        stats = measure_many(lambda: None, repeats=3, warmup=1)
        assert stats.count == 3

    def test_measure_many_warmup_excluded(self):
        calls = []
        stats = measure_many(lambda: calls.append(1), repeats=2, warmup=2)
        assert len(calls) == 4
        assert stats.count == 2

    def test_repeats_validated(self):
        with pytest.raises(ReproError):
            measure_many(lambda: None, repeats=0)


class TestGroupedTimings:
    def test_groups_by_key(self):
        items = [1, 1, 2, 2, 2]
        grouped = grouped_timings(items, key=lambda x: x, run=lambda x: None)
        assert grouped[1].count == 2
        assert grouped[2].count == 3

    def test_keys_sorted(self):
        grouped = grouped_timings(
            [3, 1, 2], key=lambda x: x, run=lambda x: None
        )
        assert list(grouped) == [1, 2, 3]

    def test_run_receives_item(self):
        seen = []
        grouped_timings([5, 6], key=lambda x: 0, run=seen.append)
        assert seen == [5, 6]
