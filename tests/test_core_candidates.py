"""Unit tests for repro.core.candidates on the toy corpus."""

import pytest

from repro.core.candidates import (
    CandidateListBuilder,
    CandidateState,
    StateKind,
)
from repro.errors import ReformulationError


@pytest.fixture()
def builder(toy_graph, toy_similarity) -> CandidateListBuilder:
    return CandidateListBuilder(toy_graph, toy_similarity, n_candidates=5)


class TestValidation:
    def test_n_candidates_positive(self, toy_graph, toy_similarity):
        with pytest.raises(ReformulationError):
            CandidateListBuilder(toy_graph, toy_similarity, n_candidates=0)

    def test_void_sim_positive(self, toy_graph, toy_similarity):
        with pytest.raises(ReformulationError):
            CandidateListBuilder(toy_graph, toy_similarity, void_sim=0.0)

    def test_empty_query_rejected(self, builder):
        with pytest.raises(ReformulationError):
            builder.build([])


class TestKnownKeyword:
    def test_original_state_first(self, builder):
        states = builder.candidates_for("probabilistic")
        assert states[0].kind is StateKind.ORIGINAL
        assert states[0].text == "probabilistic"
        assert states[0].node_id is not None

    def test_original_has_top_sim(self, builder):
        states = builder.candidates_for("probabilistic")
        assert states[0].sim == max(s.sim for s in states)

    def test_similar_states_have_nodes(self, builder, toy_graph):
        states = builder.candidates_for("probabilistic")
        for state in states[1:]:
            assert state.kind is StateKind.SIMILAR
            assert toy_graph.node(state.node_id).text == state.text

    def test_candidate_count_capped(self, toy_graph, toy_similarity):
        builder = CandidateListBuilder(
            toy_graph, toy_similarity, n_candidates=2
        )
        states = builder.candidates_for("probabilistic")
        assert len(states) == 3  # original + 2 similar

    def test_without_original(self, toy_graph, toy_similarity):
        builder = CandidateListBuilder(
            toy_graph, toy_similarity, include_original=False, n_candidates=3
        )
        states = builder.candidates_for("probabilistic")
        assert all(s.kind is StateKind.SIMILAR for s in states)

    def test_with_void(self, toy_graph, toy_similarity):
        builder = CandidateListBuilder(
            toy_graph, toy_similarity, include_void=True
        )
        states = builder.candidates_for("probabilistic")
        assert states[-1].is_void
        assert states[-1].text is None
        assert states[-1].node_id is None


class TestUnknownKeyword:
    def test_unknown_keeps_original_only(self, builder):
        states = builder.candidates_for("zzzunknown")
        assert len(states) == 1
        assert states[0].kind is StateKind.ORIGINAL
        assert states[0].node_id is None
        assert states[0].sim == 1.0

    def test_unknown_with_void(self, toy_graph, toy_similarity):
        builder = CandidateListBuilder(
            toy_graph, toy_similarity, include_void=True
        )
        states = builder.candidates_for("zzzunknown")
        assert len(states) == 2
        assert states[1].is_void


class TestBuild:
    def test_build_per_position(self, builder):
        lists = builder.build(["probabilistic", "query"])
        assert len(lists) == 2
        assert lists[0][0].text == "probabilistic"
        assert lists[1][0].text == "query"

    def test_author_keyword(self, builder):
        states = builder.candidates_for("bob")
        texts = {s.text for s in states}
        assert "bob" in texts
        assert "eve" in texts  # venue-mate found by the walk

    def test_states_are_frozen(self, builder):
        state = builder.candidates_for("query")[0]
        with pytest.raises(AttributeError):
            state.sim = 2.0
