"""Tests for the SO_REUSEPORT pre-fork worker pool.

Boots real multi-process pools over the toy corpus: READY handshake,
kernel-balanced accepts across distinct worker pids, bit-identical
responses vs the in-process pipeline, aggregated metrics convergence,
worker-crash-and-respawn, and drain-under-load.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core.reformulator import ReformulatorConfig
from repro.errors import ReproError
from repro.live import LiveReformulator
from repro.server import (
    PreforkServer,
    ServerClient,
    ServerClientError,
    ServerConfig,
    suggestions_signature,
)

from tests.conftest import build_toy_database

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pre-fork pool requires os.fork"
)


@pytest.fixture(scope="module")
def warm_live():
    """A warmed pipeline, built once — forked workers share it CoW."""
    live = LiveReformulator(
        build_toy_database(), ReformulatorConfig(n_candidates=8)
    )
    live.pipeline()
    return live


def _config(**overrides) -> ServerConfig:
    defaults = dict(
        port=0,
        max_concurrency=4,
        queue_depth=8,
        metrics_flush_interval_s=0.2,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


@pytest.fixture()
def pool(warm_live):
    pool = PreforkServer(
        lambda: warm_live, _config(), workers=2, drain_timeout_s=10.0
    )
    pool.start(ready_timeout_s=60.0)
    yield pool
    pool.shutdown()


def _fresh_request(port, method, *args, **kwargs):
    """One request on a fresh connection (a new source port each time,
    so the kernel's REUSEPORT hash can land on any worker)."""
    with ServerClient(port=port, timeout_s=10.0) as client:
        return getattr(client, method)(*args, **kwargs)


class TestPoolBoot:
    def test_workers_alive_and_ready(self, pool):
        assert len(pool.worker_pids) == 2
        assert len(set(pool.worker_pids)) == 2
        response = _fresh_request(pool.port, "readyz")
        assert response.status == 200

    def test_distinct_pids_answer(self, pool):
        # fresh connections hash to different workers; healthz reports
        # the answering worker's identity in pool mode
        seen = set()
        deadline = time.monotonic() + 30.0
        while len(seen) < 2 and time.monotonic() < deadline:
            response = _fresh_request(pool.port, "healthz")
            assert response.status == 200
            body = response.json
            assert body["status"] == "ok"
            assert "worker" in body and "pid" in body
            seen.add(body["pid"])
        assert seen <= set(pool.worker_pids)
        assert len(seen) == 2, "accepts never balanced across workers"

    def test_responses_bit_identical_to_inprocess(self, pool, warm_live):
        queries = [["probabilistic", "query"], ["pattern", "mining"]]
        for keywords in queries:
            expected = [
                (s.text, s.score, tuple(s.state_path))
                for s in warm_live.reformulate(keywords, k=5)
            ]
            for _ in range(4):  # hit both workers
                response = _fresh_request(
                    pool.port, "reformulate", keywords, k=5
                )
                assert response.status == 200
                got = suggestions_signature(
                    response.json["suggestions"]
                )
                assert got == expected

    def test_port_zero_resolves_once_for_all_workers(self, pool):
        assert pool.port != 0
        # every worker accepted on the same resolved port (the requests
        # above all used pool.port); nothing else to assert beyond that
        assert _fresh_request(pool.port, "healthz").status == 200


class TestAggregatedMetrics:
    def test_per_worker_and_aggregate_views(self, pool):
        n_requests = 6
        for _ in range(n_requests):
            response = _fresh_request(
                pool.port, "reformulate", ["probabilistic", "query"], k=3
            )
            assert response.status == 200
        # per-worker view exists on whichever worker answers
        text = _fresh_request(pool.port, "metrics").text
        assert "repro_server_requests_total" in text
        # the aggregate merges all spooled snapshots; totals converge to
        # at least the requests this test issued (spool flushes lag by
        # up to metrics_flush_interval_s, so poll)
        deadline = time.monotonic() + 30.0
        total = 0.0
        while time.monotonic() < deadline:
            aggregate = _fresh_request(pool.port, "metrics_aggregate").text
            total = sum(
                float(line.rsplit(" ", 1)[1])
                for line in aggregate.splitlines()
                if line.startswith("repro_server_requests_total")
                and 'route="/reformulate"' in line
                and 'status="200"' in line
            )
            if total >= n_requests:
                break
            time.sleep(0.2)
        assert total >= n_requests

    def test_per_lane_series_aggregate_across_workers(self, pool):
        """repro_lane_requests_total merges per lane across the pool.

        Every query is distinct: the counter tracks lane *executions*,
        and a repeat query would be served from each worker's result
        cache without touching the lane.
        """
        hmm_queries = [
            ["probabilistic", "query"], ["uncertain", "data"],
            ["pattern", "mining"], ["probabilistic", "pattern"],
        ]
        enum_queries = [
            ["frequent", "pattern"], ["uncertain", "query"], ["mining"],
        ]
        for keywords in hmm_queries:
            assert _fresh_request(
                pool.port, "reformulate", keywords, k=3, lane="hmm",
            ).status == 200
        for keywords in enum_queries:
            assert _fresh_request(
                pool.port, "reformulate", keywords, k=3, lane="enumeration",
            ).status == 200
        n_hmm, n_enum = len(hmm_queries), len(enum_queries)

        def lane_total(text, lane):
            return sum(
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith("repro_lane_requests_total")
                and f'lane="{lane}"' in line
            )

        deadline = time.monotonic() + 30.0
        totals = (0.0, 0.0)
        while time.monotonic() < deadline:
            aggregate = _fresh_request(pool.port, "metrics_aggregate").text
            totals = (
                lane_total(aggregate, "hmm"),
                lane_total(aggregate, "enumeration"),
            )
            if totals[0] >= n_hmm and totals[1] >= n_enum:
                break
            time.sleep(0.2)
        assert totals[0] >= n_hmm
        assert totals[1] >= n_enum

    def test_worker_up_series(self, pool):
        _fresh_request(pool.port, "reformulate", ["pattern"], k=2)
        deadline = time.monotonic() + 30.0
        workers_up = 0
        while time.monotonic() < deadline:
            aggregate = _fresh_request(pool.port, "metrics_aggregate").text
            workers_up = sum(
                1
                for line in aggregate.splitlines()
                if line.startswith("repro_server_worker_up{")
                and line.rstrip().endswith(" 1")
            )
            if workers_up >= 2:
                break
            time.sleep(0.2)
        assert workers_up == 2


class TestCrashRespawn:
    def test_killed_worker_is_respawned(self, warm_live):
        pool = PreforkServer(
            lambda: warm_live, _config(), workers=2, drain_timeout_s=10.0
        )
        pool.start(ready_timeout_s=60.0)
        try:
            original = set(pool.worker_pids)
            victim = pool.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                pids = set(pool.worker_pids)
                if len(pids) == 2 and victim not in pids:
                    break
                time.sleep(0.1)
            pids = set(pool.worker_pids)
            assert victim not in pids
            assert len(pids) == 2, "crashed worker was not respawned"
            assert pids != original
            # the pool still serves correct answers after the respawn
            for _ in range(4):
                response = _fresh_request(
                    pool.port, "reformulate", ["probabilistic"], k=3
                )
                assert response.status == 200
                assert response.json["suggestions"]
        finally:
            pool.shutdown()

    def test_respawn_cap_abandons_slot(self, warm_live):
        pool = PreforkServer(
            lambda: warm_live, _config(), workers=2,
            max_respawns=0, drain_timeout_s=10.0,
        )
        pool.start(ready_timeout_s=60.0)
        try:
            victim = pool.worker_pids[0]
            survivor = pool.worker_pids[1]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while victim in pool.worker_pids and time.monotonic() < deadline:
                time.sleep(0.1)
            assert pool.worker_pids == [survivor]
            # the surviving worker still answers
            response = _fresh_request(pool.port, "healthz")
            assert response.status == 200
        finally:
            pool.shutdown()


class TestDrain:
    def test_drain_under_load(self, warm_live):
        pool = PreforkServer(
            lambda: warm_live, _config(), workers=2, drain_timeout_s=15.0
        )
        pool.start(ready_timeout_s=60.0)
        statuses: list = []
        errors: list = []
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                try:
                    response = _fresh_request(
                        pool.port, "reformulate",
                        ["probabilistic", "query"], k=5,
                    )
                    statuses.append(response.status)
                except ServerClientError:
                    # refused/reset while the pool winds down is the
                    # expected fate of requests racing the close
                    errors.append(1)
                    if stop.is_set():
                        return

        threads = [
            threading.Thread(target=hammer, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while len(statuses) < 8 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(statuses) >= 8, "load never reached the pool"
        pool.shutdown()
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        # every accepted request was answered, never half-dropped
        assert set(statuses) <= {200, 429}
        assert statuses.count(200) >= 8
        # and the port is actually released
        with pytest.raises(ServerClientError):
            ServerClient(port=pool.port, timeout_s=0.5).healthz()

    def test_shutdown_idempotent_and_start_once(self, warm_live):
        pool = PreforkServer(lambda: warm_live, _config(), workers=1)
        pool.start(ready_timeout_s=60.0)
        with pytest.raises(ReproError, match="already started"):
            pool.start()
        pool.shutdown()
        pool.shutdown()  # second call returns immediately
        assert pool.worker_pids == []


class TestAdminReloadSemantics:
    """/admin/reload is per-worker: only the accepting worker refreshes.

    The response names the worker that served it, so operators can tell
    which copy was reloaded and repeat until every index answered (or
    use /admin/ingest, whose layer chain fans out automatically).
    """

    def test_reload_names_exactly_one_worker_per_call(self, pool):
        seen = set()
        deadline = time.monotonic() + 30.0
        while len(seen) < 2 and time.monotonic() < deadline:
            response = _fresh_request(
                pool.port, "request", "POST", "/admin/reload", {}
            )
            assert response.status == 200
            body = response.json
            assert body["reloaded"] is True
            assert body["worker"] in (0, 1)
            assert body["pid"] in pool.worker_pids
            seen.add(body["worker"])
        assert seen == {0, 1}, "reload never reached both workers"


NEW_ROWS = [
    {
        "table": "papers",
        "row": {
            "pid": 4, "title": "uncertain stream mining",
            "cid": 1, "year": 2012,
        },
    },
    {"table": "writes", "row": {"wid": 4, "aid": 2, "pid": 4}},
]


class TestPoolIngest:
    """POST /admin/ingest converges every worker via the layer chain."""

    @pytest.fixture()
    def ingest_pool(self, tmp_path_factory):
        from repro.graph.tat import TATGraph
        from repro.index.inverted import InvertedIndex
        from repro.offline import OfflinePrecomputer
        from repro.offline_store import write_store_v2

        database = build_toy_database()
        graph = TATGraph(database, InvertedIndex(database))
        store = OfflinePrecomputer(
            graph, n_similar=8, closeness_top=30
        ).build_store(walk_method="direct")
        root = write_store_v2(
            store,
            tmp_path_factory.mktemp("pool-store") / "store",
            n_shards=2,
            build_info={"n_similar": 8, "closeness_top": 30},
        )
        live = LiveReformulator(
            build_toy_database(),
            ReformulatorConfig(n_candidates=8),
            relations=root,
        )
        live.pipeline()
        pool = PreforkServer(
            lambda: live, _config(), workers=2, drain_timeout_s=10.0
        )
        pool.start(ready_timeout_s=60.0)
        yield pool
        pool.shutdown()

    def test_ingest_converges_all_workers_without_errors(self, ingest_pool):
        pool = ingest_pool
        statuses: list = []
        errors: list = []
        stop = threading.Event()

        def hammer() -> None:
            while not stop.is_set():
                try:
                    response = _fresh_request(
                        pool.port, "reformulate",
                        ["probabilistic", "query"], k=3,
                    )
                    statuses.append(response.status)
                except ServerClientError as exc:
                    if not stop.is_set():
                        errors.append(exc)

        threads = [
            threading.Thread(target=hammer, daemon=True) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            response = _fresh_request(
                pool.port, "request", "POST", "/admin/ingest",
                {"rows": NEW_ROWS},
            )
            assert response.status == 200
            body = response.json
            assert body["ingested"] is True
            assert body["stats"]["epoch"] == 1
            assert body["stats"]["n_rows"] == len(NEW_ROWS)
            assert body["worker"] in (0, 1)

            # the sibling replays the layer on its flush tick; poll the
            # health probe until every worker pid reports the new epoch
            epochs: dict = {}
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                probe = _fresh_request(pool.port, "healthz")
                assert probe.status == 200
                epochs[probe.json["pid"]] = probe.json["ingest_epoch"]
                if len(epochs) == 2 and set(epochs.values()) == {1}:
                    break
                time.sleep(0.05)
            assert len(epochs) == 2, "never heard from both workers"
            assert set(epochs.values()) == {1}, epochs
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        # zero non-{200,429} responses during the swap
        assert errors == []
        assert set(statuses) <= {200, 429}
        assert statuses.count(200) >= 1

    def test_all_workers_serve_ingested_terms_identically(
        self, ingest_pool
    ):
        pool = ingest_pool
        response = _fresh_request(
            pool.port, "request", "POST", "/admin/ingest",
            {"rows": NEW_ROWS},
        )
        assert response.status == 200
        deadline = time.monotonic() + 30.0
        epochs: dict = {}
        while time.monotonic() < deadline:
            probe = _fresh_request(pool.port, "healthz")
            epochs[probe.json["pid"]] = probe.json["ingest_epoch"]
            if len(epochs) == 2 and set(epochs.values()) == {1}:
                break
            time.sleep(0.05)
        assert set(epochs.values()) == {1}
        # the ingested title's terms answer identically from fresh
        # connections (which hash across both workers)
        signatures = set()
        for _ in range(8):
            result = _fresh_request(
                pool.port, "reformulate", ["uncertain", "stream"], k=3
            )
            assert result.status == 200
            assert result.json["suggestions"]
            signatures.add(
                tuple(suggestions_signature(result.json["suggestions"]))
            )
        assert len(signatures) == 1

    def test_ingest_rejects_bad_rows(self, ingest_pool):
        response = _fresh_request(
            ingest_pool.port, "request", "POST", "/admin/ingest",
            {"rows": []},
        )
        assert response.status == 400


class TestPoolTracing:
    @pytest.fixture()
    def tracing_pool(self, warm_live):
        pool = PreforkServer(
            lambda: warm_live,
            _config(trace_sample_rate=1.0, slow_trace_ms=0.0),
            workers=2,
            drain_timeout_s=10.0,
        )
        pool.start(ready_timeout_s=60.0)
        yield pool
        pool.shutdown()

    def test_every_worker_response_carries_request_id(self, tracing_pool):
        for i in range(8):
            response = _fresh_request(
                tracing_pool.port, "request", "POST", "/reformulate",
                {"keywords": ["probabilistic", "query"], "k": 2},
                request_id=f"pool-req-{i}",
            )
            assert response.status == 200
            assert response.request_id == f"pool-req-{i}"
        # generated ids on requests that do not send one
        assert _fresh_request(tracing_pool.port, "healthz").request_id

    def test_debug_traces_aggregates_across_workers(self, tracing_pool):
        """The acceptance path: a slow/degraded request's span tree is
        retrievable via GET /debug/traces from any worker of a 2-worker
        pool (snapshots spool on the flush cadence, so poll)."""
        ids = {f"agg-{i}" for i in range(6)}
        for trace_id in sorted(ids):
            response = _fresh_request(
                tracing_pool.port, "request", "POST", "/reformulate",
                {"keywords": ["probabilistic", "query"], "k": 2},
                request_id=trace_id,
            )
            assert response.status == 200
        degraded = _fresh_request(
            tracing_pool.port, "request", "POST", "/reformulate",
            {"keywords": ["probabilistic", "query"], "deadline_ms": 1},
            request_id="agg-degraded",
        )
        assert degraded.status == 200
        assert degraded.json["degraded"] is True
        wanted = ids | {"agg-degraded"}
        deadline = time.monotonic() + 30.0
        seen = set()
        payload = {}
        while time.monotonic() < deadline:
            payload = _fresh_request(
                tracing_pool.port, "debug_traces"
            ).json
            seen = {r["trace_id"] for r in payload["traces"]}
            if wanted <= seen and payload["workers"] == [0, 1]:
                break
            time.sleep(0.2)
        assert wanted <= seen
        assert payload["workers"] == [0, 1]
        by_id = {r["trace_id"]: r for r in payload["traces"]}
        record = by_id[sorted(ids)[0]]
        assert record["span_tree"]["name"] == "http.request"
        assert record["span_tree"]["attributes"]["trace_id"] == (
            record["trace_id"]
        )
        for stage in ("queue_wait", "decode", "serialize"):
            assert stage in record["stages"], record["stages"]
        assert record["worker"] in (0, 1)
        deg = by_id["agg-degraded"]
        assert deg["degraded"] is True and deg["notable"] is True
        assert deg["degraded_mode"] is not None
