"""Unit tests for repro.search.results and repro.search.ranking."""

import pytest

from repro.search.ranking import ResultRanker
from repro.search.results import ResultSet, SearchResult


def make_result(root=("papers", 0), extra=(), matches=(("kw", ("papers", 0)),)):
    nodes = frozenset([root, *extra])
    edges = frozenset(
        (root, e) if root <= e else (e, root) for e in extra
    )
    return SearchResult(
        root=root, nodes=nodes, edges=edges, matches=tuple(matches)
    )


class TestSearchResult:
    def test_size(self):
        r = make_result(extra=[("writes", 0), ("authors", 0)])
        assert r.size == 3

    def test_keyword_tuples(self):
        r = make_result(matches=(("a", ("papers", 0)), ("b", ("papers", 1))))
        assert r.keyword_tuples() == {
            "a": ("papers", 0), "b": ("papers", 1),
        }

    def test_signature_distinguishes_matches(self):
        r1 = make_result(matches=(("a", ("papers", 0)),))
        r2 = make_result(matches=(("b", ("papers", 0)),))
        assert r1.signature() != r2.signature()

    def test_render_marks_root(self, toy_db):
        r = make_result(root=("papers", 0))
        text = r.render(toy_db, highlight=False)
        assert "*papers#0" in text
        assert "probabilistic query answering" in text

    def test_render_missing_tuple(self, toy_db):
        r = make_result(root=("papers", 999))
        assert "missing" in r.render(toy_db)

    def test_render_highlights_matched_keyword(self, toy_db):
        r = make_result(
            root=("papers", 0),
            matches=(("probabilistic", ("papers", 0)),),
        )
        text = r.render(toy_db)
        assert "[probabilistic] query answering" in text

    def test_render_highlights_atomic_whole_value(self, toy_db):
        r = make_result(
            root=("authors", 0),
            matches=(("ann", ("authors", 0)),),
        )
        assert "[ann]" in r.render(toy_db)

    def test_render_highlight_case_insensitive(self, toy_db):
        r = make_result(
            root=("papers", 0),
            matches=(("PROBABILISTIC", ("papers", 0)),),
        )
        assert "[probabilistic]" in r.render(toy_db)

    def test_render_highlight_off(self, toy_db):
        r = make_result(
            root=("papers", 0),
            matches=(("probabilistic", ("papers", 0)),),
        )
        assert "[" not in r.render(toy_db, highlight=False)


class TestResultSet:
    def test_iteration_and_indexing(self):
        rs = ResultSet(query=("a",), results=[make_result(), make_result()])
        assert len(rs) == 2
        assert rs[0] is list(iter(rs))[0]

    def test_top(self):
        rs = ResultSet(query=("a",), results=[make_result()] * 5)
        assert len(rs.top(3)) == 3

    def test_size_property(self):
        rs = ResultSet(query=("a",))
        assert rs.size == 0


class TestRanker:
    def test_tight_trees_rank_first(self, toy_search, toy_index):
        ranker = ResultRanker(toy_index)
        results = toy_search.search(["probabilistic", "query"])
        ranked = ranker.rank(results)
        sizes = [r.size for r in ranked]
        # the single-tuple direct hit must come before any joined tree
        assert sizes[0] == min(sizes)

    def test_scores_positive_for_real_matches(self, toy_search, toy_index):
        ranker = ResultRanker(toy_index)
        for result in toy_search.search(["pattern"]):
            assert ranker.score(result) > 0

    def test_rank_preserves_membership(self, toy_search, toy_index):
        ranker = ResultRanker(toy_index)
        results = toy_search.search(["probabilistic", "pattern"])
        ranked = ranker.rank(results)
        assert {r.signature() for r in ranked.results} == {
            r.signature() for r in results.results
        }

    def test_top_shortcut(self, toy_search, toy_index):
        ranker = ResultRanker(toy_index)
        results = toy_search.search(["pattern"])
        assert len(ranker.top(results, 1)) == 1

    def test_rarer_match_scores_higher(self, toy_search, toy_index):
        """'uncertain' (df 1) beats 'probabilistic' (df 2) on idf."""
        ranker = ResultRanker(toy_index)
        rare = toy_search.search(["uncertain"])[0]
        common = toy_search.search(["probabilistic"])[0]
        assert ranker.score(rare) > ranker.score(common)
