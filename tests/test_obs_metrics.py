"""Unit tests for repro.obs.metrics (counters, gauges, histograms)."""

import math
import threading

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRIC,
    exponential_buckets,
)


class TestExponentialBuckets:
    def test_geometric_growth(self):
        assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]

    def test_fractional_start(self):
        buckets = exponential_buckets(1e-6, 4.0, 3)
        assert buckets == pytest.approx([1e-6, 4e-6, 1.6e-5])

    def test_validation(self):
        with pytest.raises(ReproError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(ReproError):
            exponential_buckets(1.0, 1.0, 3)
        with pytest.raises(ReproError):
            exponential_buckets(1.0, 2.0, 0)

    def test_default_seconds_buckets_cover_microsecond_to_minutes(self):
        assert DEFAULT_SECONDS_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_SECONDS_BUCKETS[-1] > 60.0
        assert len(DEFAULT_SECONDS_BUCKETS) == 20


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(ReproError):
            counter.inc(-1.0)

    def test_invalid_name_rejected(self):
        with pytest.raises(ReproError):
            Counter("0starts-with-digit")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == 3.0

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(1.5)
        assert gauge.value == -1.5


class TestHistogram:
    def test_boundary_is_inclusive(self):
        # Prometheus `le` semantics: an observation equal to a bound
        # lands in that bucket, not the next one.
        hist = Histogram("h", buckets=[1.0, 2.0, 4.0])
        hist.observe(1.0)
        hist.observe(2.0)
        assert hist.bucket_counts() == [1, 1, 0, 0]

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        hist.observe(100.0)
        assert hist.bucket_counts() == [0, 0, 1]
        assert hist.cumulative_buckets()[-1] == (float("inf"), 1)

    def test_below_first_bound(self):
        hist = Histogram("h", buckets=[1.0, 2.0])
        hist.observe(0.001)
        assert hist.bucket_counts() == [1, 0, 0]

    def test_cumulative_monotone_and_ends_at_count(self):
        hist = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 99.0, 1.0):
            hist.observe(value)
        cumulative = [count for _le, count in hist.cumulative_buckets()]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == hist.count == 5

    def test_sum_and_mean(self):
        hist = Histogram("h", buckets=[10.0])
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.sum == 6.0
        assert hist.mean == 3.0

    def test_mean_without_observations(self):
        assert Histogram("h", buckets=[1.0]).mean == 0.0

    def test_bounds_must_increase(self):
        with pytest.raises(ReproError):
            Histogram("h", buckets=[1.0, 1.0])
        with pytest.raises(ReproError):
            Histogram("h", buckets=[2.0, 1.0])
        with pytest.raises(ReproError):
            Histogram("h", buckets=[])

    def test_default_buckets_are_seconds_buckets(self):
        assert Histogram("h").bounds == DEFAULT_SECONDS_BUCKETS


class TestNoopMetric:
    def test_accepts_all_mutations(self):
        NOOP_METRIC.inc()
        NOOP_METRIC.inc(5)
        NOOP_METRIC.dec()
        NOOP_METRIC.set(3.0)
        NOOP_METRIC.observe(1.0)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "help")
        b = registry.counter("c_total")
        assert a is b
        assert len(registry) == 1

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        hit = registry.counter("lookups_total", outcome="hit")
        miss = registry.counter("lookups_total", outcome="miss")
        assert hit is not miss
        hit.inc()
        assert registry.get("lookups_total", outcome="hit").value == 1.0
        assert registry.get("lookups_total", outcome="miss").value == 0.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", a="1", b="2")
        b = registry.counter("c_total", b="2", a="1")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")
        with pytest.raises(ReproError):
            registry.histogram("x")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=[1.0, 2.0])
        # re-asking without explicit buckets returns the original
        assert registry.histogram("h").bounds == [1.0, 2.0]
        with pytest.raises(ReproError):
            registry.histogram("h", buckets=[1.0, 3.0])

    def test_invalid_label_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.counter("c_total", **{"bad-label": "x"})

    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("absent") is None
        assert len(registry) == 0

    def test_collect_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z_total")
        registry.gauge("a_gauge")
        registry.counter("m_total", kind="x")
        names = [m.name for m in registry.collect()]
        assert names == ["a_gauge", "m_total", "z_total"]

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.get("c_total") is None

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000.0

    def test_histogram_infinity_not_in_bounds(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0])
        assert not any(math.isinf(b) for b in hist.bounds)
