"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import main
from repro.storage.schemaspec import save_database

from tests.conftest import build_toy_database


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A small synthesized corpus written by the synth subcommand."""
    directory = tmp_path_factory.mktemp("corpus")
    out = io.StringIO()
    code = main([
        "synth", "--out", str(directory),
        "--authors", "40", "--papers", "150", "--conferences", "6",
        "--seed", "3",
    ], out=out)
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def toy_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("toy")
    save_database(build_toy_database(), directory)
    return directory


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSynthAndDescribe:
    def test_synth_writes_schema_and_csvs(self, corpus_dir):
        assert (corpus_dir / "schema.json").exists()
        assert (corpus_dir / "papers.csv").exists()

    def test_describe(self, corpus_dir):
        code, text = run(["describe", "--data", str(corpus_dir)])
        assert code == 0
        assert "papers: 150 rows" in text
        assert "TAT graph" in text


class TestReformulate:
    def test_basic(self, toy_dir):
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ])
        assert code == 0
        assert "input: probabilistic | query" in text
        assert len(text.strip().splitlines()) >= 2

    def test_methods(self, toy_dir):
        for method in ("tat", "cooccurrence", "rank"):
            code, text = run([
                "reformulate", "--data", str(toy_dir),
                "probabilistic", "query", "--method", method,
                "--candidates", "5", "-k", "2",
            ])
            assert code == 0, method

    def test_uppercase_keywords_normalized(self, toy_dir):
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "PROBABILISTIC", "Query", "-k", "2", "--candidates", "5",
        ])
        assert code == 0
        assert "input: probabilistic | query" in text

    def test_log_algorithm_matches_linear(self, toy_dir):
        base = [
            "reformulate", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ]
        _code, linear = run(base + ["--algorithm", "astar"])
        code, logged = run(base + ["--algorithm", "astar_log"])
        assert code == 0
        assert logged == linear

    def test_batch_file(self, toy_dir, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text(
            "probabilistic query\npattern mining\nprobabilistic query\n",
            encoding="utf-8",
        )
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "--batch", str(batch), "--workers", "2",
            "-k", "2", "--candidates", "5",
        ])
        assert code == 0
        assert text.count("input: probabilistic | query") == 2
        assert text.count("input: pattern | mining") == 1
        # duplicate queries print identical suggestion blocks
        blocks = text.split("input: ")
        dupes = [b for b in blocks if b.startswith("probabilistic | query")]
        assert dupes[0] == dupes[1]

    def test_batch_matches_single_queries(self, toy_dir, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("probabilistic query\n", encoding="utf-8")
        _code, single = run([
            "reformulate", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ])
        code, batched = run([
            "reformulate", "--data", str(toy_dir),
            "--batch", str(batch), "-k", "3", "--candidates", "5",
        ])
        assert code == 0
        assert batched == single

    def test_batch_and_keywords_conflict(self, toy_dir, tmp_path):
        batch = tmp_path / "queries.txt"
        batch.write_text("probabilistic query\n", encoding="utf-8")
        code, _text = run([
            "reformulate", "--data", str(toy_dir),
            "probabilistic", "--batch", str(batch),
        ])
        assert code == 1

    def test_no_keywords_and_no_batch_errors(self, toy_dir):
        code, _text = run(["reformulate", "--data", str(toy_dir)])
        assert code == 1

    def test_missing_batch_file(self, toy_dir):
        code, _text = run([
            "reformulate", "--data", str(toy_dir),
            "--batch", "/nonexistent/queries.txt",
        ])
        assert code == 1

    def test_no_plan_cache_flag_identical(self, toy_dir):
        base = [
            "reformulate", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ]
        _code, cached = run(base)
        code, uncached = run(base + ["--no-plan-cache"])
        assert code == 0
        assert uncached == cached


class TestSimilarAndClose:
    def test_similar_walk(self, toy_dir):
        code, text = run([
            "similar", "--data", str(toy_dir), "probabilistic", "-n", "4",
        ])
        assert code == 0
        assert len(text.strip().splitlines()) == 4

    def test_similar_cooccurrence(self, toy_dir):
        code, text = run([
            "similar", "--data", str(toy_dir), "probabilistic",
            "--method", "cooccurrence",
        ])
        assert code == 0

    def test_similar_unknown_term_fails_cleanly(self, toy_dir):
        code, _text = run(["similar", "--data", str(toy_dir), "zzzz"])
        assert code == 1

    def test_close(self, toy_dir):
        code, text = run([
            "close", "--data", str(toy_dir), "probabilistic", "-n", "3",
        ])
        assert code == 0
        assert len(text.strip().splitlines()) == 3


class TestSearch:
    def test_search(self, toy_dir):
        code, text = run([
            "search", "--data", str(toy_dir), "probabilistic", "query",
        ])
        assert code == 0
        assert "results" in text
        assert "papers#0" in text


class TestPrecompute:
    def test_precompute_then_serve(self, toy_dir, tmp_path):
        relations = tmp_path / "relations.json"
        code, text = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(relations), "--similar", "6",
        ])
        assert code == 0
        assert relations.exists()
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "--relations", str(relations),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ])
        assert code == 0
        assert "probabilistic" in text

    def test_precompute_sharded_then_serve(self, toy_dir, tmp_path):
        store_dir = tmp_path / "store"
        code, text = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(store_dir), "--shards", "4",
            "--batch-size", "8", "--workers", "2",
            "--progress-every", "5",
        ])
        assert code == 0
        assert "4 shards" in text
        assert "terms/s" in text
        assert "precomputed 8/15 terms" in text  # per-batch progress
        assert (store_dir / "manifest.json").exists()
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "--relations", str(store_dir),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ])
        assert code == 0
        assert "probabilistic" in text

    def test_store_info(self, toy_dir, tmp_path):
        store_dir = tmp_path / "store"
        code, _ = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(store_dir), "--shards", "3",
        ])
        assert code == 0
        code, text = run([
            "store", "info", "--data", str(toy_dir),
            "--store", str(store_dir),
        ])
        assert code == 0
        assert "format version: 2" in text
        assert "shards: 3" in text
        assert "build.batch_size: 64" in text

    def test_store_migrate(self, toy_dir, tmp_path):
        v1 = tmp_path / "relations.json"
        code, _ = run([
            "precompute", "--data", str(toy_dir), "--out", str(v1),
        ])
        assert code == 0
        dest = tmp_path / "v2"
        code, text = run([
            "store", "migrate", "--data", str(toy_dir),
            "--src", str(v1), "--dest", str(dest), "--shards", "2",
        ])
        assert code == 0
        assert "migrated" in text and "2 shards" in text
        code, text = run([
            "store", "info", "--data", str(toy_dir), "--store", str(dest),
        ])
        assert code == 0
        assert "build.migrated_from" in text

    def test_store_info_missing_is_error(self, toy_dir, tmp_path):
        code = main([
            "store", "info", "--data", str(toy_dir),
            "--store", str(tmp_path / "nope.json"),
        ], out=io.StringIO())
        assert code == 1


class TestExplain:
    def test_explain_emits_trace_and_decomposition(self, toy_dir):
        code, text = run([
            "explain", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "2", "--candidates", "5",
        ])
        assert code == 0
        # span tree covering the pipeline stages...
        assert "trace:" in text
        for stage in ("reformulate", "parse", "candidates", "hmm_build",
                      "decode", "postprocess"):
            assert stage in text
        # ...plus the per-position factor table for each suggestion
        assert "[1]" in text
        assert "emission" in text and "transition" in text
        assert "recombined" in text

    def test_explain_rank_method(self, toy_dir):
        code, text = run([
            "explain", "--data", str(toy_dir),
            "probabilistic", "query", "--method", "rank",
            "-k", "2", "--candidates", "5",
        ])
        assert code == 0
        assert "suggestions (rank/rank):" in text


class TestStats:
    def test_stats_json_after_precompute(self, toy_dir, tmp_path):
        # Same process: the precompute run records into the global
        # registry, which `stats` then exports.
        import json

        from repro import obs

        obs.reset()
        code, _ = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(tmp_path / "relations.json"),
        ])
        assert code == 0
        code, text = run(["stats", "--format", "json"])
        assert code == 0
        snapshot = json.loads(text)
        names = {m["name"] for m in snapshot["metrics"]}
        assert "repro_offline_terms_total" in names
        assert "repro_offline_batches_total" in names
        obs.reset()

    def test_stats_prometheus_format(self, toy_dir, tmp_path):
        from repro import obs

        obs.reset()
        code, _ = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(tmp_path / "relations.json"),
        ])
        assert code == 0
        code, text = run(["stats", "--format", "prometheus"])
        assert code == 0
        assert "# TYPE repro_offline_terms_total counter" in text
        assert "# HELP repro_offline_terms_total" in text
        assert 'repro_offline_walk_residual_bucket{le="+Inf"}' in text
        obs.reset()

    def test_metrics_out_roundtrip(self, toy_dir, tmp_path):
        from repro import obs

        obs.reset()
        metrics_file = tmp_path / "metrics.json"
        code, _ = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(tmp_path / "relations.json"),
            "--metrics-out", str(metrics_file),
        ])
        assert code == 0
        assert metrics_file.exists()
        code, text = run([
            "stats", "--from-json", str(metrics_file),
            "--format", "prometheus",
        ])
        assert code == 0
        assert "repro_offline_terms_total 15" in text
        obs.reset()

    def test_stats_missing_snapshot_is_error(self, tmp_path):
        code = main(
            ["stats", "--from-json", str(tmp_path / "nope.json")],
            out=io.StringIO(),
        )
        assert code == 1


class TestTraceFlag:
    def test_reformulate_trace_prints_span_tree(self, toy_dir):
        from repro import obs

        obs.reset()
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "2", "--candidates", "5",
            "--trace",
        ])
        assert code == 0
        assert "input: probabilistic | query" in text
        assert "reformulate" in text and "decode" in text
        assert not obs.is_enabled()  # switch restored after the command
        obs.reset()

    def test_precompute_trace_prints_batches(self, toy_dir, tmp_path):
        from repro import obs

        obs.reset()
        code, text = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(tmp_path / "relations.json"),
            "--batch-size", "8", "--trace",
        ])
        assert code == 0
        assert "precompute.build_store" in text
        assert "precompute.batch" in text
        assert not obs.is_enabled()
        obs.reset()


class TestVerbosity:
    def test_quiet_suppresses_diagnostics_keeps_payload(self, toy_dir):
        code, text = run([
            "--quiet", "reformulate", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "2", "--candidates", "5",
        ])
        assert code == 0
        assert "input: probabilistic | query" in text

    def test_quiet_precompute_drops_progress(self, toy_dir, tmp_path):
        code, text = run([
            "--quiet", "precompute", "--data", str(toy_dir),
            "--out", str(tmp_path / "relations.json"),
            "--batch-size", "8", "--progress-every", "5",
        ])
        assert code == 0
        assert "precomputed" not in text

    def test_verbose_and_quiet_are_exclusive(self, toy_dir):
        with pytest.raises(SystemExit):
            main(
                ["--verbose", "--quiet", "describe", "--data", str(toy_dir)],
                out=io.StringIO(),
            )

    def test_logging_handler_removed_after_main(self, toy_dir):
        import logging

        before = list(logging.getLogger("repro").handlers)
        run(["describe", "--data", str(toy_dir)])
        assert logging.getLogger("repro").handlers == before


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServe:
    """End-to-end ``repro serve``: READY line, live endpoints, drain."""

    def test_serve_announces_port_and_answers(self, toy_dir, monkeypatch):
        import threading
        import time

        from repro.server import ServerClient
        from repro.server.app import ReformulationServer

        # signal handlers belong to the real daemon, not the test process
        monkeypatch.setattr(
            ReformulationServer, "install_signal_handlers",
            lambda self: None,
        )
        captured = {}
        original = ReformulationServer.serve_forever

        def capturing_serve_forever(self):
            captured["server"] = self
            original(self)

        monkeypatch.setattr(
            ReformulationServer, "serve_forever", capturing_serve_forever
        )
        out = io.StringIO()
        thread = threading.Thread(
            target=main,
            args=([
                "serve", "--data", str(toy_dir), "--port", "0",
                "--candidates", "5", "--no-metrics",
            ],),
            kwargs={"out": out},
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 60
        while time.time() < deadline and "READY" not in out.getvalue():
            time.sleep(0.05)
        ready_lines = [
            line for line in out.getvalue().splitlines()
            if line.startswith("READY ")
        ]
        assert ready_lines and ready_lines[0].startswith(
            "READY http://127.0.0.1:"
        )
        port = int(ready_lines[0].rsplit(":", 1)[1])
        assert port != 0  # --port 0 resolved to the real ephemeral port
        try:
            with ServerClient(port=port) as client:
                assert client.readyz().status == 200
                response = client.reformulate(
                    ["probabilistic", "query"], k=2
                )
                assert response.status == 200
                assert response.json["suggestions"]
        finally:
            captured["server"].shutdown()
            thread.join(timeout=30.0)
        assert not thread.is_alive()

    def test_serve_rejects_bad_config(self, toy_dir):
        code, _text = run([
            "serve", "--data", str(toy_dir), "--port", "0",
            "--max-concurrency", "0", "--no-metrics",
        ])
        assert code != 0


class TestTraceVerb:
    @pytest.fixture()
    def trace_document(self, tmp_path):
        """A /debug/traces-shaped document, as the daemon would serve."""
        import json

        payload = {
            "count": 2,
            "workers": [0],
            "traces": [
                {
                    "trace_id": "fast-1", "ts": 1.0, "verb": "POST",
                    "route": "/reformulate", "status": 200,
                    "duration_s": 0.002, "worker": 0,
                    "slow": False, "notable": False,
                    "stages": {"decode": 0.001},
                    "keywords": ["probabilistic", "query"],
                    "algorithm": "astar",
                },
                {
                    "trace_id": "slow-1", "ts": 2.0, "verb": "POST",
                    "route": "/reformulate", "status": 200,
                    "duration_s": 0.9, "worker": 1,
                    "slow": True, "notable": True, "cache": "miss",
                    "stages": {"queue_wait": 0.1, "decode": 0.7},
                    "keywords": ["probabilistic", "query"],
                    "algorithm": "astar",
                    "span_tree": {
                        "name": "http.request",
                        "duration_seconds": 0.9,
                        "attributes": {"trace_id": "slow-1"},
                        "children": [],
                    },
                },
            ],
        }
        path = tmp_path / "traces.json"
        path.write_text(json.dumps(payload))
        return path

    def test_renders_all_records(self, trace_document):
        code, text = run(["trace", "--from-json", str(trace_document)])
        assert code == 0
        assert "trace fast-1" in text
        assert "trace slow-1" in text
        assert "http.request" in text
        assert "[slow]" in text

    def test_id_filter(self, trace_document):
        code, text = run([
            "trace", "--from-json", str(trace_document), "--id", "slow-1",
        ])
        assert code == 0
        assert "slow-1" in text and "fast-1" not in text

    def test_slow_only_filter(self, trace_document):
        code, text = run([
            "trace", "--from-json", str(trace_document), "--slow-only",
        ])
        assert code == 0
        assert "slow-1" in text and "fast-1" not in text

    def test_no_match_is_clean(self, trace_document):
        code, text = run([
            "trace", "--from-json", str(trace_document), "--id", "nope",
        ])
        assert code == 0
        assert "no recorded traces match" in text

    def test_explain_joins_score_decomposition(self, toy_dir, trace_document):
        code, text = run([
            "trace", "--from-json", str(trace_document),
            "--id", "slow-1", "--explain", "--data", str(toy_dir),
            "--candidates", "5",
        ])
        assert code == 0
        assert "trace slow-1" in text
        assert "suggestions (tat/astar)" in text
        assert "contribution" in text  # per-position score table

    def test_explain_without_data_errors(self, trace_document):
        code, _ = run([
            "trace", "--from-json", str(trace_document), "--explain",
        ])
        assert code == 1

    def test_requires_exactly_one_source(self, trace_document):
        code, _ = run(["trace"])
        assert code == 1
        code, _ = run([
            "trace", "--from-json", str(trace_document),
            "--url", "http://127.0.0.1:1",
        ])
        assert code == 1

    def test_missing_file_is_error(self, tmp_path):
        code, _ = run(["trace", "--from-json", str(tmp_path / "nope.json")])
        assert code == 1

    def test_url_source_against_live_daemon(self, toy_dir):
        from repro.core.reformulator import ReformulatorConfig
        from repro.live import LiveReformulator
        from repro.server import ReformulationServer, ServerClient, ServerConfig

        from tests.conftest import build_toy_database

        server = ReformulationServer(
            LiveReformulator(
                build_toy_database(), ReformulatorConfig(n_candidates=6)
            ),
            ServerConfig(port=0, trace_sample_rate=1.0),
        ).start()
        try:
            with ServerClient(port=server.port) as client:
                client.request(
                    "POST", "/reformulate",
                    {"keywords": ["probabilistic", "query"], "k": 2},
                    request_id="via-url",
                )
            code, text = run([
                "trace", "--url", f"http://127.0.0.1:{server.port}",
                "--id", "via-url",
            ])
        finally:
            server.shutdown()
        assert code == 0
        assert "trace via-url" in text
