"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import main
from repro.storage.schemaspec import save_database

from tests.conftest import build_toy_database


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    """A small synthesized corpus written by the synth subcommand."""
    directory = tmp_path_factory.mktemp("corpus")
    out = io.StringIO()
    code = main([
        "synth", "--out", str(directory),
        "--authors", "40", "--papers", "150", "--conferences", "6",
        "--seed", "3",
    ], out=out)
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def toy_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("toy")
    save_database(build_toy_database(), directory)
    return directory


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSynthAndDescribe:
    def test_synth_writes_schema_and_csvs(self, corpus_dir):
        assert (corpus_dir / "schema.json").exists()
        assert (corpus_dir / "papers.csv").exists()

    def test_describe(self, corpus_dir):
        code, text = run(["describe", "--data", str(corpus_dir)])
        assert code == 0
        assert "papers: 150 rows" in text
        assert "TAT graph" in text


class TestReformulate:
    def test_basic(self, toy_dir):
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ])
        assert code == 0
        assert "input: probabilistic | query" in text
        assert len(text.strip().splitlines()) >= 2

    def test_methods(self, toy_dir):
        for method in ("tat", "cooccurrence", "rank"):
            code, text = run([
                "reformulate", "--data", str(toy_dir),
                "probabilistic", "query", "--method", method,
                "--candidates", "5", "-k", "2",
            ])
            assert code == 0, method

    def test_uppercase_keywords_normalized(self, toy_dir):
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "PROBABILISTIC", "Query", "-k", "2", "--candidates", "5",
        ])
        assert code == 0
        assert "input: probabilistic | query" in text


class TestSimilarAndClose:
    def test_similar_walk(self, toy_dir):
        code, text = run([
            "similar", "--data", str(toy_dir), "probabilistic", "-n", "4",
        ])
        assert code == 0
        assert len(text.strip().splitlines()) == 4

    def test_similar_cooccurrence(self, toy_dir):
        code, text = run([
            "similar", "--data", str(toy_dir), "probabilistic",
            "--method", "cooccurrence",
        ])
        assert code == 0

    def test_similar_unknown_term_fails_cleanly(self, toy_dir):
        code, _text = run(["similar", "--data", str(toy_dir), "zzzz"])
        assert code == 1

    def test_close(self, toy_dir):
        code, text = run([
            "close", "--data", str(toy_dir), "probabilistic", "-n", "3",
        ])
        assert code == 0
        assert len(text.strip().splitlines()) == 3


class TestSearch:
    def test_search(self, toy_dir):
        code, text = run([
            "search", "--data", str(toy_dir), "probabilistic", "query",
        ])
        assert code == 0
        assert "results" in text
        assert "papers#0" in text


class TestPrecompute:
    def test_precompute_then_serve(self, toy_dir, tmp_path):
        relations = tmp_path / "relations.json"
        code, text = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(relations), "--similar", "6",
        ])
        assert code == 0
        assert relations.exists()
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "--relations", str(relations),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ])
        assert code == 0
        assert "probabilistic" in text

    def test_precompute_sharded_then_serve(self, toy_dir, tmp_path):
        store_dir = tmp_path / "store"
        code, text = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(store_dir), "--shards", "4",
            "--batch-size", "8", "--workers", "2",
            "--progress-every", "5",
        ])
        assert code == 0
        assert "4 shards" in text
        assert "terms/s" in text
        assert "precomputed 8/15 terms" in text  # per-batch progress
        assert (store_dir / "manifest.json").exists()
        code, text = run([
            "reformulate", "--data", str(toy_dir),
            "--relations", str(store_dir),
            "probabilistic", "query", "-k", "3", "--candidates", "5",
        ])
        assert code == 0
        assert "probabilistic" in text

    def test_store_info(self, toy_dir, tmp_path):
        store_dir = tmp_path / "store"
        code, _ = run([
            "precompute", "--data", str(toy_dir),
            "--out", str(store_dir), "--shards", "3",
        ])
        assert code == 0
        code, text = run([
            "store", "info", "--data", str(toy_dir),
            "--store", str(store_dir),
        ])
        assert code == 0
        assert "format version: 2" in text
        assert "shards: 3" in text
        assert "build.batch_size: 64" in text

    def test_store_migrate(self, toy_dir, tmp_path):
        v1 = tmp_path / "relations.json"
        code, _ = run([
            "precompute", "--data", str(toy_dir), "--out", str(v1),
        ])
        assert code == 0
        dest = tmp_path / "v2"
        code, text = run([
            "store", "migrate", "--data", str(toy_dir),
            "--src", str(v1), "--dest", str(dest), "--shards", "2",
        ])
        assert code == 0
        assert "migrated" in text and "2 shards" in text
        code, text = run([
            "store", "info", "--data", str(toy_dir), "--store", str(dest),
        ])
        assert code == 0
        assert "build.migrated_from" in text

    def test_store_info_missing_is_error(self, toy_dir, tmp_path):
        code = main([
            "store", "info", "--data", str(toy_dir),
            "--store", str(tmp_path / "nope.json"),
        ], out=io.StringIO())
        assert code == 1


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
