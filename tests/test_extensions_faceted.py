"""Unit tests for repro.extensions.faceted."""

import pytest

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.errors import ReformulationError
from repro.extensions.faceted import Facet, FacetedSuggester


@pytest.fixture(scope="module")
def reformulator(toy_graph):
    return Reformulator(toy_graph, ReformulatorConfig(n_candidates=6))


@pytest.fixture(scope="module")
def suggester(reformulator):
    return FacetedSuggester(reformulator)


@pytest.fixture(scope="module")
def searching_suggester(reformulator, toy_search):
    return FacetedSuggester(reformulator, search=toy_search)


class TestFacetForPosition:
    def test_only_target_position_varies(self, suggester):
        facet = suggester.facet_for_position(
            ["probabilistic", "query"], position=1, k=4
        )
        assert facet.position == 1
        assert facet.original == "query"
        for entry in facet.entries:
            first, second = entry.query_text.split(" ", 1)
            assert first == "probabilistic"
            assert second == entry.substituted
            assert second != "query"

    def test_entries_ranked(self, suggester):
        facet = suggester.facet_for_position(
            ["probabilistic", "query"], position=0, k=4
        )
        scores = [e.score for e in facet.entries]
        assert scores == sorted(scores, reverse=True)

    def test_position_validated(self, suggester):
        with pytest.raises(ReformulationError):
            suggester.facet_for_position(["a", "b"], position=5)

    def test_field_label(self, suggester):
        facet = suggester.facet_for_position(
            ["probabilistic", "query"], position=0, k=3
        )
        assert facet.field_label == "papers.title"

    def test_result_counts_annotated(self, searching_suggester):
        facet = searching_suggester.facet_for_position(
            ["probabilistic", "query"], position=1, k=4
        )
        for entry in facet.entries:
            assert entry.result_count is not None
            assert entry.result_count > 0

    def test_dead_entries_dropped_with_search(self, searching_suggester):
        """Facet entries matching nothing never surface."""
        facet = searching_suggester.facet_for_position(
            ["probabilistic", "query"], position=1, k=6
        )
        assert all(e.result_count for e in facet.entries)


class TestFacets:
    def test_one_facet_per_position(self, suggester):
        facets = suggester.facets(["probabilistic", "query"], k=3)
        assert [f.position for f in facets] == [0, 1]

    def test_field_facets_grouping(self, suggester):
        grouped = suggester.field_facets(["probabilistic", "query"], k=4)
        assert "papers.title" in grouped
        for entries in grouped.values():
            scores = [e.score for e in entries]
            assert scores == sorted(scores, reverse=True)

    def test_single_keyword_query(self, suggester):
        facets = suggester.facets(["pattern"], k=3)
        assert len(facets) == 1
        assert facets[0].entries  # alternatives for the only keyword

    def test_unknown_keyword_facet_empty_or_safe(self, suggester):
        facet = suggester.facet_for_position(
            ["zzzunknown", "query"], position=0, k=3
        )
        # nothing to substitute an unknown term with
        assert isinstance(facet, Facet)
        assert facet.entries == ()
