"""Property-based closeness invariants on random databases."""

import pytest
from hypothesis import given, settings

from repro.graph.closeness import ClosenessExtractor
from repro.graph.tat import TATGraph
from repro.index.inverted import InvertedIndex

from tests.test_property_invariants import small_databases


def _term_ids(graph, limit=6):
    return [
        graph.term_node_id(t)
        for t in sorted(graph.index.terms(), key=str)
    ][:limit]


class TestClosenessProperties:
    @settings(max_examples=15, deadline=None)
    @given(small_databases())
    def test_degree_weighting_symmetric(self, database):
        graph = TATGraph(database, InvertedIndex(database))
        extractor = ClosenessExtractor(
            graph, beam_width=None, path_weighting="degree"
        )
        ids = _term_ids(graph)
        for a in ids:
            for b in ids:
                assert extractor.closeness(a, b) == pytest.approx(
                    extractor.closeness(b, a)
                )

    @settings(max_examples=15, deadline=None)
    @given(small_databases())
    def test_count_weighting_symmetric(self, database):
        """Shortest-path counts are symmetric on undirected graphs."""
        graph = TATGraph(database, InvertedIndex(database))
        extractor = ClosenessExtractor(
            graph, beam_width=None, path_weighting="count"
        )
        ids = _term_ids(graph)
        for a in ids:
            for b in ids:
                assert extractor.closeness(a, b) == pytest.approx(
                    extractor.closeness(b, a)
                )

    @settings(max_examples=15, deadline=None)
    @given(small_databases())
    def test_closeness_nonnegative_and_self_zero(self, database):
        graph = TATGraph(database, InvertedIndex(database))
        extractor = ClosenessExtractor(graph, beam_width=None)
        ids = _term_ids(graph)
        for a in ids:
            assert extractor.closeness(a, a) == 0.0
            for b in ids:
                assert extractor.closeness(a, b) >= 0.0

    @settings(max_examples=15, deadline=None)
    @given(small_databases())
    def test_distances_match_networkx(self, database):
        """Unpruned hop distances agree with networkx shortest paths."""
        import networkx as nx

        graph = TATGraph(database, InvertedIndex(database))
        extractor = ClosenessExtractor(
            graph, max_depth=6, beam_width=None
        )
        g = nx.Graph()
        g.add_nodes_from(range(graph.n_nodes))
        matrix = graph.adjacency.matrix.tocoo()
        g.add_edges_from(zip(matrix.row, matrix.col))
        ids = _term_ids(graph, limit=4)
        for a in ids:
            expected = nx.single_source_shortest_path_length(
                g, a, cutoff=6
            )
            for b in ids:
                assert extractor.distance(a, b) == expected.get(b)

    @settings(max_examples=10, deadline=None)
    @given(small_databases())
    def test_pruned_is_subset_of_exact(self, database):
        """Pruning may drop reachable nodes but never invents closeness."""
        graph = TATGraph(database, InvertedIndex(database))
        exact = ClosenessExtractor(graph, beam_width=None)
        pruned = ClosenessExtractor(graph, beam_width=2)
        ids = _term_ids(graph, limit=4)
        for a in ids:
            exact_paths = exact.paths_from(a)
            for b, info in pruned.paths_from(a).items():
                assert b in exact_paths
                # a pruned search can only find equal-or-longer routes
                assert info.distance >= exact_paths[b].distance
