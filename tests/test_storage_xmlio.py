"""Unit tests for repro.storage.xmlio."""

import pytest

from repro.errors import ReproError
from repro.storage.xmlio import xml_schema, xml_to_database

SAMPLE = """
<library>
  <book year="2008">
    <title>probabilistic databases overview</title>
    <author>ann example</author>
  </book>
  <book year="2010">
    <title>uncertain data management survey</title>
    <author>ann example</author>
  </book>
  <journal>
    <title>frequent pattern mining advances</title>
  </journal>
</library>
"""


@pytest.fixture()
def db():
    return xml_to_database(SAMPLE)


class TestShredding:
    def test_element_count(self, db):
        # library + 2 book + 1 journal + 3 title + 2 author = 9
        assert len(db.table("elements")) == 9

    def test_attribute_count(self, db):
        assert len(db.table("attributes")) == 2

    def test_root_has_no_parent(self, db):
        root = db.table("elements").get(0)
        assert root["tag"] == "library"
        assert root["parent"] is None

    def test_parent_links(self, db):
        books = db.table("elements").find("tag", "book")
        for book in books:
            assert book["parent"] == 0
        titles = db.table("elements").find("tag", "title")
        parents = {t["parent"] for t in titles}
        assert parents <= {b["eid"] for b in db.table("elements").scan()}

    def test_text_captured(self, db):
        titles = db.table("elements").find("tag", "title")
        texts = {t["text"] for t in titles}
        assert "probabilistic databases overview" in texts

    def test_whitespace_text_is_null(self, db):
        root = db.table("elements").get(0)
        assert root["text"] is None

    def test_integrity(self, db):
        db.check_integrity()

    def test_parse_error(self):
        with pytest.raises(ReproError):
            xml_to_database("<unclosed>")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            xml_to_database(str(tmp_path / "nope.xml"))

    def test_parse_from_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(SAMPLE, encoding="utf-8")
        db = xml_to_database(str(path))
        assert len(db.table("elements")) == 9

    def test_append_second_document(self, db):
        db2 = xml_to_database("<extra><note>more text here</note></extra>", db)
        assert db2 is db
        assert len(db.table("elements")) == 11
        db.check_integrity()


class TestPipelineOverXml:
    def test_schema_shape(self):
        schema = xml_schema()
        assert set(schema.tables) == {"elements", "attributes"}

    def test_reformulation_over_xml(self, db):
        """The DBLP-style synonym effect works on shredded XML too:
        'probabilistic' and 'uncertain' share an author subtree, never an
        element text."""
        from repro import Reformulator, ReformulatorConfig

        reformulator = Reformulator.from_database(
            db, ReformulatorConfig(n_candidates=6)
        )
        terms = {
            t for t, _s in reformulator.similarity.similar_terms(
                "probabilistic", 10
            )
        }
        assert "uncertain" in terms

    def test_keyword_search_over_xml(self, db):
        from repro.index.inverted import InvertedIndex
        from repro.search.keyword import KeywordSearchEngine
        from repro.storage.tuplegraph import TupleGraph

        engine = KeywordSearchEngine(TupleGraph(db), InvertedIndex(db))
        # element text is segmented, so the author matches by word
        results = engine.search(["probabilistic", "ann"])
        assert results.size >= 1
