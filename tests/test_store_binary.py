"""Tests for the v3 binary memmap store (`repro.storage.binary`).

Covers the format roundtrip (including adversarial term keys), v2↔v3
equivalence down to bit-identical store-backed reformulations,
corruption/checksum rejection, concurrent multi-process opens over one
physical store, and migration entry points.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.reformulator import Reformulator, ReformulatorConfig
from repro.errors import ReproError
from repro.graph.closeness import ClosenessExtractor
from repro.offline import OfflinePrecomputer, TermRelationStore
from repro.offline_store import migrate_to_v3
from repro.storage.binary import (
    BLOCK_FILES,
    BinaryTermRelationStore,
    write_store_v3,
)

from tests.strategies import field_terms  # noqa: F401  (used via strategy)
from tests.test_property_store import _populate, relation_stores

store_settings = settings(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)


@pytest.fixture(scope="module")
def toy_store(toy_graph):
    """A full precomputed store over the toy graph."""
    precomputer = OfflinePrecomputer(
        toy_graph,
        closeness=ClosenessExtractor(toy_graph, beam_width=None),
        n_similar=10,
        closeness_top=50,
    )
    return precomputer.build_store(batch_size=16)


@pytest.fixture(scope="module")
def toy_v3(toy_store, toy_graph, tmp_path_factory):
    root = write_store_v3(
        toy_store, tmp_path_factory.mktemp("v3") / "store-v3"
    )
    return BinaryTermRelationStore.load(root, toy_graph)


class TestRoundtrip:
    @given(rows=relation_stores())
    @store_settings
    def test_items_identity_any_keys(self, toy_graph, tmp_path_factory, rows):
        # pipes, backslashes, unicode in keys all survive the byte-sorted
        # string table and come back exactly
        store = _populate(toy_graph, rows)
        root = write_store_v3(store, tmp_path_factory.mktemp("prop") / "v3")
        loaded = BinaryTermRelationStore.load(root, toy_graph)
        assert len(loaded) == len(store)
        assert dict(loaded._items()) == store._relations
        for term, _similar, _closeness in rows:
            assert term in loaded

    def test_full_store_items_match_v2(
        self, toy_store, toy_graph, toy_v3, tmp_path
    ):
        v2 = TermRelationStore.load(
            toy_store.save_sharded(tmp_path / "v2", n_shards=4), toy_graph
        )
        assert dict(toy_v3._items()) == dict(v2._items())
        assert sorted(map(repr, toy_v3.terms())) == sorted(
            map(repr, v2.terms())
        )

    def test_load_dispatch_picks_binary(self, toy_v3, toy_graph):
        loaded = TermRelationStore.load(toy_v3.root, toy_graph)
        assert isinstance(loaded, BinaryTermRelationStore)
        # a manifest path works too
        loaded = TermRelationStore.load(
            toy_v3.root / "manifest.json", toy_graph
        )
        assert isinstance(loaded, BinaryTermRelationStore)

    def test_empty_store(self, toy_graph, tmp_path):
        root = write_store_v3(TermRelationStore(toy_graph), tmp_path / "v3")
        loaded = BinaryTermRelationStore.load(root, toy_graph)
        assert len(loaded) == 0
        assert loaded._keys() == []

    def test_put_raises_read_only(self, toy_v3):
        with pytest.raises(ReproError, match="read-only"):
            toy_v3.put(None, [], {})

    def test_build_info_and_blocks(self, toy_store, toy_graph, tmp_path):
        root = write_store_v3(
            toy_store, tmp_path / "v3", build_info={"source": "toy"}
        )
        loaded = BinaryTermRelationStore.load(root, toy_graph)
        assert loaded.build_info() == {"source": "toy"}
        roles = {block["role"] for block in loaded.blocks_info()}
        assert roles == set(BLOCK_FILES)


class TestOnlineInterfaces:
    def test_point_lookups_match_dict_store(self, toy_store, toy_v3):
        # every stored pair answers identically through the memmap paths
        node_ids = [
            toy_store.graph.resolve_text_one(text)
            for text in ("probabilistic", "pattern", "uncertain", "vldb")
        ]
        for a in node_ids:
            for b in node_ids:
                assert toy_v3.closeness(a, b) == toy_store.closeness(a, b)
                assert toy_v3.similarity(a, b) == toy_store.similarity(a, b)

    def test_similar_nodes_match(self, toy_store, toy_v3):
        for text in ("probabilistic", "pattern", "mining"):
            node_id = toy_store.graph.resolve_text_one(text)
            for top_n in (1, 3, 100):
                assert [
                    (s.node_id, s.score)
                    for s in toy_v3.similar_nodes(node_id, top_n)
                ] == [
                    (s.node_id, s.score)
                    for s in toy_store.similar_nodes(node_id, top_n)
                ]

    def test_reformulation_bit_identical_across_formats(
        self, toy_store, toy_graph, toy_v3, tmp_path
    ):
        # the acceptance bar: store-backed top-k identical to the digit
        v2 = TermRelationStore.load(
            toy_store.save_sharded(tmp_path / "v2", n_shards=4), toy_graph
        )
        config = ReformulatorConfig(n_candidates=5)
        queries = [
            ["probabilistic", "query"],
            ["pattern", "mining"],
            ["uncertain", "data", "management"],
        ]
        for query in queries:
            expected = [
                (sq.terms, sq.score)
                for sq in Reformulator(
                    toy_graph, config, similarity=v2, closeness=v2
                ).reformulate(query, k=5)
            ]
            got = [
                (sq.terms, sq.score)
                for sq in Reformulator(
                    toy_graph, config, similarity=toy_v3, closeness=toy_v3
                ).reformulate(query, k=5)
            ]
            assert got == expected


class TestCorruptionRejection:
    def _copy_store(self, toy_v3, tmp_path):
        import shutil

        dest = tmp_path / "copy"
        shutil.copytree(toy_v3.root, dest)
        return dest

    @pytest.mark.parametrize(
        "victim", ["close_scores.npy", "keys.bin", "similar_cols.npy"]
    )
    def test_flipped_byte_rejected(self, toy_v3, toy_graph, tmp_path, victim):
        root = self._copy_store(toy_v3, tmp_path)
        path = root / victim
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="checksum mismatch"):
            BinaryTermRelationStore.load(root, toy_graph)

    def test_missing_block_rejected(self, toy_v3, toy_graph, tmp_path):
        root = self._copy_store(toy_v3, tmp_path)
        (root / "similar_scores.npy").unlink()
        with pytest.raises(ReproError):
            BinaryTermRelationStore.load(root, toy_graph)

    def test_truncated_block_fails_even_unverified(
        self, toy_v3, toy_graph, tmp_path
    ):
        # verify=False skips hashing, but the structural boundary checks
        # still catch a block whose shape disagrees with its siblings
        root = self._copy_store(toy_v3, tmp_path)
        path = root / "key_offsets.npy"
        np.save(path, np.load(path)[:-2])
        with pytest.raises(ReproError):
            BinaryTermRelationStore.load(root, toy_graph, verify=False)

    def test_manifest_tampered_version(self, toy_v3, toy_graph, tmp_path):
        root = self._copy_store(toy_v3, tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 9
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="format version"):
            BinaryTermRelationStore.load(root, toy_graph)

    def test_verify_false_skips_hashing(self, toy_v3, toy_graph, tmp_path):
        # flip a byte *without* breaking npy structure: unverified open
        # succeeds (trusted-store fast path), verified open refuses
        root = self._copy_store(toy_v3, tmp_path)
        path = root / "close_scores.npy"
        blob = bytearray(path.read_bytes())
        if len(blob) > 128:  # corrupt a data byte, not the npy header
            blob[-1] ^= 0x01
            path.write_bytes(bytes(blob))
            BinaryTermRelationStore.load(root, toy_graph, verify=False)
            with pytest.raises(ReproError, match="checksum mismatch"):
                BinaryTermRelationStore.load(root, toy_graph, verify=True)


class TestMigration:
    def test_migrate_from_v1(self, toy_store, toy_graph, tmp_path):
        toy_store.save(tmp_path / "v1.json")
        migrated = migrate_to_v3(
            tmp_path / "v1.json", tmp_path / "v3", toy_graph
        )
        assert isinstance(migrated, BinaryTermRelationStore)
        assert dict(migrated._items()) == dict(toy_store._items())
        info = migrated.build_info()
        assert info["migrated_from_version"] == 1

    def test_migrate_from_v2(self, toy_store, toy_graph, tmp_path):
        toy_store.save_sharded(tmp_path / "v2", n_shards=4)
        migrated = migrate_to_v3(tmp_path / "v2", tmp_path / "v3", toy_graph)
        assert dict(migrated._items()) == dict(toy_store._items())
        assert migrated.build_info()["migrated_from_version"] == 2

    def test_migrate_v3_to_v3_rejected(self, toy_v3, toy_graph, tmp_path):
        with pytest.raises(ReproError, match="already a binary"):
            migrate_to_v3(toy_v3.root, tmp_path / "again", toy_graph)


def _child_probe(root, conn):
    """Open the shared store in a forked child and report a lookup."""
    try:
        from repro.index.inverted import InvertedIndex
        from repro.graph.tat import TATGraph
        from tests.conftest import build_toy_database

        db = build_toy_database()
        graph = TATGraph(db, InvertedIndex(db).build())
        store = BinaryTermRelationStore.load(root, graph)
        a = graph.resolve_text_one("probabilistic")
        b = graph.resolve_text_one("pattern")
        conn.send(("ok", os.getpid(), store.closeness(a, b), len(store)))
    except BaseException as exc:  # pragma: no cover - failure reporting
        conn.send(("error", repr(exc), None, None))
    finally:
        conn.close()


class TestConcurrentOpen:
    def test_multi_process_open_same_answers(self, toy_store, toy_v3):
        # N processes mmap the same physical blocks and answer identically
        ctx = multiprocessing.get_context("fork")
        procs, pipes = [], []
        for _ in range(3):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_child_probe, args=(str(toy_v3.root), child)
            )
            proc.start()
            procs.append(proc)
            pipes.append(parent)
        results = [pipe.recv() for pipe in pipes]
        for proc in procs:
            proc.join(timeout=60)
        a = toy_store.graph.resolve_text_one("probabilistic")
        b = toy_store.graph.resolve_text_one("pattern")
        expected = toy_store.closeness(a, b)
        pids = set()
        for status, pid, closeness, n_terms in results:
            assert status == "ok", pid
            pids.add(pid)
            assert closeness == expected
            assert n_terms == len(toy_store)
        assert len(pids) == 3  # genuinely distinct processes
