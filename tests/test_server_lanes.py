"""Lane selection over HTTP: validation, fallback, cache isolation, metrics.

Runs real daemons over two corpora: the toy database (cohesive queries,
all four lanes) and the two-island database from ``tests.test_lanes``
(engineered so cross-island queries have no cohesive substitution and
must trip the ``hmm`` → ``relaxation`` fallback chain end to end).
"""

import pytest

from repro import obs
from repro.core.reformulator import ReformulatorConfig
from repro.live import LiveReformulator
from repro.server import (
    DEGRADE_CACHED,
    DEGRADE_VITERBI,
    ReformulationServer,
    ServerClient,
    ServerConfig,
    ServerConfigError,
)

from tests.conftest import build_toy_database
from tests.test_lanes import build_islands_database

INCOHESIVE = ["skyline", "crowdsourcing"]
COHESIVE = ["skyline", "ranking"]


def _make_server(database=None, **config_kwargs) -> ReformulationServer:
    defaults = dict(port=0, keepalive_timeout_s=1.0)
    defaults.update(config_kwargs)
    live = LiveReformulator(
        database if database is not None else build_toy_database(),
        ReformulatorConfig(n_candidates=6),
    )
    return ReformulationServer(live, ServerConfig(**defaults)).start()


@pytest.fixture(scope="module")
def server():
    srv = _make_server()
    yield srv
    srv.shutdown()


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as c:
        yield c


@pytest.fixture(scope="module")
def fallback_server():
    """Two-island corpus with the hmm → relaxation chain enabled."""
    srv = _make_server(
        database=build_islands_database(),
        lanes=("hmm", "relaxation"),
        fallback_lane="relaxation",
    )
    yield srv
    srv.shutdown()


@pytest.fixture()
def fallback_client(fallback_server):
    with ServerClient(port=fallback_server.port) as c:
        yield c


class TestLaneValidation:
    """Unknown lanes 400 before any decode; missing lanes take the default."""

    def test_unknown_lane_400_with_error_body(self, client):
        response = client.reformulate(["pattern", "mining"], lane="warp")
        assert response.status == 400
        assert "lane" in response.json["error"]
        assert "warp" in response.json["error"]

    def test_non_string_lane_400(self, client):
        response = client.request(
            "POST", "/reformulate",
            {"keywords": ["pattern"], "lane": 7},
        )
        assert response.status == 400

    def test_missing_lane_takes_default(self, client):
        response = client.reformulate(["pattern", "mining"], k=3)
        assert response.status == 200
        assert response.json["lane"] == "hmm"
        assert response.json["lane_requested"] == "hmm"
        assert response.json["relaxed"] is False
        assert response.json["fallback_from"] is None

    def test_disabled_lane_400(self):
        server = _make_server(lanes=("hmm",))
        try:
            with ServerClient(port=server.port) as client:
                response = client.reformulate(["pattern"], lane="relaxation")
                assert response.status == 400
                assert "relaxation" in response.json["error"]
        finally:
            server.shutdown()

    def test_batch_unknown_lane_400(self, client):
        response = client.reformulate_batch([["pattern"]], lane="warp")
        assert response.status == 400

    def test_inconsistent_lane_config_rejected(self):
        with pytest.raises(ServerConfigError):
            ServerConfig(port=0, lanes=("hmm",), default_lane="schema").validate()
        with pytest.raises(ServerConfigError):
            ServerConfig(port=0, lanes=("hmm", "warp")).validate()


class TestLaneSelection:
    """Explicit lane names reach the named lane, single and batch."""

    def test_explicit_lanes_are_honored(self, client):
        for lane in ("hmm", "enumeration", "relaxation", "schema"):
            response = client.reformulate(
                ["pattern", "mining"], k=3, lane=lane
            )
            assert response.status == 200, lane
            assert response.json["lane"] == lane
            assert response.json["lane_requested"] == lane

    def test_suggestions_match_direct_lane(self, client, server):
        response = client.reformulate(
            ["probabilistic", "pattern"], k=3, lane="enumeration"
        )
        direct = server.live.reformulate_lane(
            ["probabilistic", "pattern"], k=3, lane="enumeration"
        )
        got = [
            (s["text"], s["score"], tuple(s["state_path"]))
            for s in response.json["suggestions"]
        ]
        assert got == [
            (s.text, s.score, s.state_path) for s in direct.suggestions
        ]

    def test_schema_lane_reports_bindings(self, client):
        response = client.reformulate(
            ["author", "ann", "pattern"], k=3, lane="schema"
        )
        assert response.status == 200
        payload = response.json
        assert payload["lane"] == "schema"
        for suggestion in payload["suggestions"]:
            assert suggestion["bindings"] == {"ann": ["authors", "name"]}

    def test_batch_carries_per_entry_lane(self, client):
        response = client.reformulate_batch(
            [["pattern", "mining"], ["probabilistic", "query"]],
            k=2, lane="relaxation",
        )
        assert response.status == 200
        payload = response.json
        assert payload["lane_requested"] == "relaxation"
        for entry in payload["results"]:
            assert entry["lane"] == "relaxation"
            assert entry["relaxed"] is False  # toy corpus: all cohesive


class TestFallbackChain:
    """hmm → relaxation over HTTP on the engineered two-island corpus."""

    def test_incohesive_query_returns_relaxed(self, fallback_client):
        response = fallback_client.reformulate(INCOHESIVE, k=5, lane="hmm")
        assert response.status == 200
        payload = response.json
        assert payload["lane"] == "relaxation"
        assert payload["lane_requested"] == "hmm"
        assert payload["fallback_from"] == "hmm"
        assert payload["relaxed"] is True
        assert len(payload["suggestions"]) > 0
        for suggestion in payload["suggestions"]:
            assert suggestion["relaxed"] is True
            assert suggestion["dropped"] or suggestion["generalized"]

    def test_cohesive_query_stays_on_hmm(self, fallback_client):
        response = fallback_client.reformulate(COHESIVE, k=5, lane="hmm")
        assert response.status == 200
        payload = response.json
        assert payload["lane"] == "hmm"
        assert payload["fallback_from"] is None
        assert payload["relaxed"] is False

    def test_batch_falls_back_per_entry(self, fallback_client):
        response = fallback_client.reformulate_batch(
            [INCOHESIVE, COHESIVE], k=5
        )
        assert response.status == 200
        entries = response.json["results"]
        assert [e["lane"] for e in entries] == ["relaxation", "hmm"]
        assert [e["fallback_from"] for e in entries] == ["hmm", None]


class TestCacheLaneIsolation:
    """A cached answer from one lane must never serve another lane."""

    def test_lanes_do_not_cross_serve(self):
        server = _make_server(
            database=build_islands_database(),
            lanes=("hmm", "relaxation"),
        )
        try:
            with ServerClient(port=server.port) as client:
                plain = client.reformulate(INCOHESIVE, k=5, lane="hmm")
                assert plain.json["relaxed"] is False
                relaxed = client.reformulate(
                    INCOHESIVE, k=5, lane="relaxation"
                )
                # same keywords, same k: a shared key would replay the
                # (unrelaxed) hmm answer here
                assert relaxed.json["lane"] == "relaxation"
                assert relaxed.json["relaxed"] is True
                again = client.reformulate(INCOHESIVE, k=5, lane="hmm")
                assert again.json["lane"] == "hmm"
                assert again.json["relaxed"] is False
                assert again.json["suggestions"] == plain.json["suggestions"]
        finally:
            server.shutdown()

    def test_degraded_lookup_is_lane_keyed(self):
        """A warm relaxation answer must not satisfy a degraded hmm
        request (it would serve relaxed suggestions to a caller that
        asked for plain substitutions) — the fallback drops to
        single-best instead."""
        server = _make_server(
            database=build_islands_database(),
            lanes=("hmm", "relaxation"),
        )
        try:
            with ServerClient(port=server.port) as client:
                warm = client.reformulate(INCOHESIVE, k=3, lane="relaxation")
                assert warm.json["relaxed"] is True
                degraded_hmm = client.reformulate(
                    INCOHESIVE, k=3, lane="hmm", deadline_ms=1
                )
                assert degraded_hmm.json["degraded"] is True
                assert degraded_hmm.json["degraded_mode"] == DEGRADE_VITERBI
                assert degraded_hmm.json["lane"] == "hmm"
                degraded_relax = client.reformulate(
                    INCOHESIVE, k=3, lane="relaxation", deadline_ms=1
                )
                assert degraded_relax.json["degraded"] is True
                assert degraded_relax.json["degraded_mode"] == DEGRADE_CACHED
                assert (
                    degraded_relax.json["suggestions"]
                    == warm.json["suggestions"]
                )
        finally:
            server.shutdown()


class TestLaneObservability:
    """Per-lane series on /metrics; lane names in logs and traces."""

    def test_per_lane_metrics_series(self):
        server = _make_server(
            database=build_islands_database(),
            lanes=("hmm", "relaxation"),
            fallback_lane="relaxation",
        )
        obs.reset()
        try:
            with obs.enabled():
                with ServerClient(port=server.port) as client:
                    assert client.reformulate(
                        COHESIVE, k=3, lane="hmm"
                    ).status == 200
                    assert client.reformulate(
                        INCOHESIVE, k=3, lane="hmm"
                    ).status == 200
                    metrics_text = client.metrics().text
            registry = obs.registry()
            hmm_requests = registry.get(
                "repro_lane_requests_total", lane="hmm"
            )
            assert hmm_requests is not None and hmm_requests.value == 2.0
            # the incohesive query chained into relaxation
            relax_requests = registry.get(
                "repro_lane_requests_total", lane="relaxation"
            )
            assert relax_requests is not None and relax_requests.value == 1.0
            fallback = registry.get(
                "repro_lane_fallback_total",
                from_lane="hmm", to_lane="relaxation",
            )
            assert fallback is not None and fallback.value == 1.0
            relaxed = registry.get(
                "repro_lane_relaxed_total", lane="relaxation"
            )
            assert relaxed is not None and relaxed.value == 1.0
            seconds = registry.get("repro_lane_seconds", lane="hmm")
            assert seconds is not None and seconds.count == 2
            for name in (
                "repro_lane_requests_total",
                "repro_lane_seconds",
                "repro_lane_fallback_total",
                "repro_lane_relaxed_total",
            ):
                assert name in metrics_text
        finally:
            obs.reset()
            server.shutdown()

    def test_access_log_carries_lane(self, tmp_path):
        import json as _json

        log_path = tmp_path / "access.jsonl"
        server = _make_server(
            database=build_islands_database(),
            lanes=("hmm", "relaxation"),
            fallback_lane="relaxation",
            access_log_path=str(log_path),
            trace_sample_rate=1.0,
        )
        try:
            with ServerClient(port=server.port) as client:
                client.reformulate(COHESIVE, k=2, lane="hmm")
                client.reformulate(INCOHESIVE, k=2, lane="hmm")
        finally:
            server.shutdown()
        lanes = [
            _json.loads(line)["lane"]
            for line in log_path.read_text().splitlines()
        ]
        # the fallback chain rewrites the serving lane on the second one
        assert lanes == ["hmm", "relaxation"]

    def test_flight_recorder_trace_carries_lane(self):
        server = _make_server(trace_sample_rate=1.0)
        obs.reset()
        try:
            with obs.enabled():
                with ServerClient(port=server.port) as client:
                    assert client.reformulate(
                        ["pattern", "mining"], k=2, lane="enumeration"
                    ).status == 200
                    traces = client.debug_traces().json["traces"]
            mine = [
                r for r in traces if r.get("route") == "/reformulate"
            ]
            assert mine and mine[0]["lane"] == "enumeration"
        finally:
            obs.reset()
            server.shutdown()
